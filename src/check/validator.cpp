#include "check/validator.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "ctg/activation.h"
#include "ctg/condition_bitset.h"
#include "util/error.h"

namespace actg::check {

namespace {

/// Absolute slack on every time/energy comparison, matching the 1e-5 the
/// rest of the library tolerates, plus a relative term so long schedules
/// do not trip on accumulated rounding.
double Tolerance(double a, double b) {
  return 1e-5 + 1e-9 * std::max(std::abs(a), std::abs(b));
}

bool Close(double a, double b) { return std::abs(a - b) <= Tolerance(a, b); }

/// a >= b up to tolerance.
bool AtLeast(double a, double b) { return a >= b - Tolerance(a, b); }

std::string TaskLabel(const ctg::Ctg& graph, TaskId t) {
  return graph.task(t).name + "(#" + std::to_string(t.index()) + ")";
}

/// The scheduled DAG re-derived from primitives: CTG edges, the implied
/// fork -> or-node dependencies straight from the analysis (not the
/// schedule's recorded copy), and the scheduler's pseudo order edges.
struct ScheduledDag {
  /// Successor lists: (dst, edge id or nullopt for extra edges).
  std::vector<std::vector<std::pair<TaskId, std::optional<EdgeId>>>> adj;
  /// Kahn order; shorter than task_count when the DAG has a cycle.
  std::vector<TaskId> order;
  bool acyclic = false;
};

ScheduledDag BuildScheduledDag(const sched::Schedule& schedule) {
  const ctg::Ctg& graph = schedule.graph();
  const std::size_t n = graph.task_count();
  ScheduledDag dag;
  dag.adj.resize(n);
  for (EdgeId eid : graph.EdgeIds()) {
    const ctg::Edge& e = graph.edge(eid);
    dag.adj[e.src.index()].emplace_back(e.dst, eid);
  }
  for (const auto& [fork, or_node] :
       schedule.analysis().ImpliedForkDependencies()) {
    dag.adj[fork.index()].emplace_back(or_node, std::nullopt);
  }
  for (const sched::ExtraEdge& e : schedule.pseudo_edges()) {
    dag.adj[e.src.index()].emplace_back(e.dst, std::nullopt);
  }

  std::vector<int> in_degree(n, 0);
  for (const auto& out : dag.adj) {
    for (const auto& [dst, eid] : out) ++in_degree[dst.index()];
  }
  dag.order.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (in_degree[i] == 0) dag.order.push_back(TaskId{static_cast<int>(i)});
  }
  for (std::size_t head = 0; head < dag.order.size(); ++head) {
    for (const auto& [dst, eid] : dag.adj[dag.order[head].index()]) {
      if (--in_degree[dst.index()] == 0) dag.order.push_back(dst);
    }
  }
  dag.acyclic = dag.order.size() == n;
  return dag;
}

/// Independently re-derived outcome of one instance. Mirrors the
/// executor's semantics (active predecessors gate starts, or-nodes wait
/// for their deciding forks via the implied dependencies, conditional
/// edges only count when taken) but recomputes every quantity from the
/// platform tables and the DVFS model definitions:
///   time(τ) = WCET(τ, pe) / σ,  energy(τ) = E(τ, pe) · σ²,
///   comm(e) = KB / B(src, dst)  (never voltage-scaled).
struct InstanceEval {
  double makespan_ms = 0.0;
  double energy_mj = 0.0;
  double overrun_ms = 0.0;
  std::size_t active_tasks = 0;
  std::size_t failed_pe_hits = 0;
  bool deadline_met = true;
};

InstanceEval EvalInstance(const sched::Schedule& schedule,
                          const ScheduledDag& dag,
                          const ctg::BranchAssignment& assignment,
                          const faults::InstanceFaults* faults) {
  const ctg::Ctg& graph = schedule.graph();
  const arch::Platform& platform = schedule.platform();
  const ctg::ActivationAnalysis& analysis = schedule.analysis();
  const std::size_t n = graph.task_count();
  const bool faulted = faults != nullptr && faults->any;

  InstanceEval eval;
  std::vector<bool> active(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    const TaskId t{static_cast<int>(i)};
    active[i] = analysis.ActivationGuard(t).Evaluate(assignment);
    if (active[i]) ++eval.active_tasks;
  }

  std::vector<double> ready(n, 0.0);
  std::vector<double> finish(n, 0.0);
  for (const TaskId u : dag.order) {
    if (!active[u.index()]) continue;
    const sched::TaskPlacement& p = schedule.placement(u);
    double factor = 1.0;
    if (faulted) {
      if (!faults->task_time_factor.empty()) {
        factor = faults->task_time_factor[u.index()];
      }
      if (faults->PeFailed(p.pe)) {
        factor *= faults->rerun_penalty;
        ++eval.failed_pe_hits;
      }
    }
    const double exec_ms =
        platform.Wcet(u, p.pe) / p.speed_ratio;  // time ∝ 1/σ
    finish[u.index()] = ready[u.index()] + exec_ms * factor;
    eval.energy_mj += platform.Energy(u, p.pe) * p.speed_ratio *
                      p.speed_ratio * factor;  // E ∝ σ², cycles ∝ factor
    if (factor > 1.0) eval.overrun_ms += exec_ms * (factor - 1.0);
    eval.makespan_ms = std::max(eval.makespan_ms, finish[u.index()]);
    for (const auto& [dst, eid] : dag.adj[u.index()]) {
      if (!active[dst.index()]) continue;
      double arrival = finish[u.index()];
      if (eid.has_value()) {
        const ctg::Edge& e = graph.edge(*eid);
        if (e.condition.has_value() &&
            assignment.Get(e.condition->fork) != e.condition->outcome) {
          continue;  // edge not taken in this instance
        }
        const PeId src_pe = schedule.placement(e.src).pe;
        const PeId dst_pe = schedule.placement(e.dst).pe;
        if (src_pe != dst_pe) {
          double comm = e.comm_kbytes / platform.Bandwidth(src_pe, dst_pe);
          if (faulted) comm *= faults->comm_time_factor;
          arrival += comm;
          eval.energy_mj +=
              e.comm_kbytes * platform.TxEnergyPerKb(src_pe, dst_pe);
        }
      }
      ready[dst.index()] = std::max(ready[dst.index()], arrival);
    }
  }

  if (graph.deadline_ms() > 0.0) {
    eval.deadline_met = eval.makespan_ms <= graph.deadline_ms() + 1e-6;
  }
  return eval;
}

ctg::BranchAssignment AssignmentOf(const ctg::Ctg& graph,
                                   const ctg::Minterm& scenario) {
  ctg::BranchAssignment assignment(graph.task_count());
  for (const ctg::Condition& c : scenario.conditions()) {
    assignment.Set(c.fork, c.outcome);
  }
  return assignment;
}

void CheckPlacements(const sched::Schedule& schedule,
                     const Expectations& expect, Report& report) {
  const ctg::Ctg& graph = schedule.graph();
  const arch::Platform& platform = schedule.platform();
  const std::size_t n = graph.task_count();
  std::vector<bool> order_seen(n, false);
  for (TaskId t : graph.TaskIds()) {
    const sched::TaskPlacement& p = schedule.placement(t);
    const std::string label = TaskLabel(graph, t);
    if (!p.pe.valid() || p.pe.index() >= platform.pe_count()) {
      report.Add("placement.pe", label + " placed on invalid PE");
      continue;  // every further check dereferences the PE
    }
    if (!expect.available_pes.Contains(p.pe)) {
      report.Add("pe-mask", label + " placed on masked-out PE " +
                                platform.pe(p.pe).name);
    }
    if (p.start_ms < -1e-7) {
      report.Add("placement.start",
                 label + " starts before time zero: " +
                     std::to_string(p.start_ms));
    }
    if (!(p.speed_ratio > 0.0) || p.speed_ratio > 1.0 + 1e-7) {
      report.Add("speed.range", label + " speed ratio " +
                                    std::to_string(p.speed_ratio) +
                                    " outside (0, 1]");
    } else {
      if (p.speed_ratio < platform.pe(p.pe).min_speed_ratio - 1e-7) {
        report.Add("speed.pe-min",
                   label + " speed ratio " + std::to_string(p.speed_ratio) +
                       " below PE minimum " +
                       std::to_string(platform.pe(p.pe).min_speed_ratio));
      }
      if (expect.speed_floor > 0.0 &&
          p.speed_ratio < expect.speed_floor - 1e-7) {
        report.Add("speed.floor",
                   label + " speed ratio " + std::to_string(p.speed_ratio) +
                       " below the imposed floor " +
                       std::to_string(expect.speed_floor));
      }
      const auto& levels = platform.pe(p.pe).speed_levels;
      if (!levels.empty() &&
          std::none_of(levels.begin(), levels.end(), [&](double level) {
            return std::abs(level - p.speed_ratio) < 1e-9;
          })) {
        report.Add("speed.level",
                   label + " speed ratio " + std::to_string(p.speed_ratio) +
                       " is not an available discrete level");
      }
      const double expected =
          p.start_ms + platform.Wcet(t, p.pe) / p.speed_ratio;
      if (!Close(p.finish_ms, expected)) {
        report.Add("placement.finish",
                   label + " finish " + std::to_string(p.finish_ms) +
                       " != start + WCET/σ = " + std::to_string(expected));
      }
    }
    if (p.order_index < 0 || p.order_index >= static_cast<int>(n)) {
      report.Add("order.permutation",
                 label + " commit order index " +
                     std::to_string(p.order_index) + " out of range");
    } else if (order_seen[p.order_index]) {
      report.Add("order.permutation",
                 label + " duplicates commit order index " +
                     std::to_string(p.order_index));
    } else {
      order_seen[p.order_index] = true;
    }
  }
}

void CheckPrecedence(const sched::Schedule& schedule, Report& report) {
  const ctg::Ctg& graph = schedule.graph();
  const arch::Platform& platform = schedule.platform();
  // Data edges: the consumer may not start before the producer's data
  // arrives; cross-PE transfers additionally occupy their link window.
  for (EdgeId eid : graph.EdgeIds()) {
    const ctg::Edge& e = graph.edge(eid);
    const sched::TaskPlacement& src = schedule.placement(e.src);
    const sched::TaskPlacement& dst = schedule.placement(e.dst);
    const sched::CommPlacement& comm = schedule.comm(eid);
    const std::string label = TaskLabel(graph, e.src) + " -> " +
                              TaskLabel(graph, e.dst);
    if (src.pe == dst.pe) {
      if (!Close(comm.finish_ms, comm.start_ms)) {
        report.Add("comm.same-pe",
                   label + " same-PE transfer has nonzero duration " +
                       std::to_string(comm.finish_ms - comm.start_ms));
      }
      if (!AtLeast(dst.start_ms, src.finish_ms)) {
        report.Add("precedence.edge",
                   label + ": consumer starts at " +
                       std::to_string(dst.start_ms) +
                       " before producer finish " +
                       std::to_string(src.finish_ms));
      }
      continue;
    }
    const double required =
        e.comm_kbytes / platform.Bandwidth(src.pe, dst.pe);
    if (comm.finish_ms - comm.start_ms < required - Tolerance(0, required)) {
      report.Add("comm.bandwidth",
                 label + " transfer window " +
                     std::to_string(comm.finish_ms - comm.start_ms) +
                     "ms shorter than " + std::to_string(required) +
                     "ms the link bandwidth requires");
    }
    if (!AtLeast(comm.start_ms, src.finish_ms)) {
      report.Add("comm.producer",
                 label + " transfer starts at " +
                     std::to_string(comm.start_ms) +
                     " before producer finish " +
                     std::to_string(src.finish_ms));
    }
    if (!AtLeast(dst.start_ms, comm.finish_ms)) {
      report.Add("comm.consumer",
                 label + " consumer starts at " +
                     std::to_string(dst.start_ms) +
                     " before transfer finish " +
                     std::to_string(comm.finish_ms));
    }
  }
  // Implied fork -> or-node dependencies, re-derived from the analysis
  // (paper Example 1: the or-node waits for the deciding fork on every
  // alternative).
  for (const auto& [fork, or_node] :
       schedule.analysis().ImpliedForkDependencies()) {
    if (!AtLeast(schedule.placement(or_node).start_ms,
                 schedule.placement(fork).finish_ms)) {
      report.Add("precedence.control",
                 TaskLabel(graph, or_node) + " starts before deciding fork " +
                     TaskLabel(graph, fork) + " finishes");
    }
  }
  // Pseudo order edges the scheduler committed to.
  for (const sched::ExtraEdge& e : schedule.pseudo_edges()) {
    if (!AtLeast(schedule.placement(e.dst).start_ms,
                 schedule.placement(e.src).finish_ms)) {
      report.Add("precedence.pseudo",
                 TaskLabel(graph, e.dst) + " starts before pseudo-order "
                 "predecessor " +
                     TaskLabel(graph, e.src) + " finishes");
    }
  }
}

void CheckExclusion(const sched::Schedule& schedule, Report& report) {
  const ctg::Ctg& graph = schedule.graph();
  const ctg::ActivationAnalysis& analysis = schedule.analysis();
  const std::size_t n = graph.task_count();
  const ctg::ConditionSpace& space = analysis.space();
  for (std::size_t i = 0; i < n; ++i) {
    const TaskId a{static_cast<int>(i)};
    for (std::size_t j = i + 1; j < n; ++j) {
      const TaskId b{static_cast<int>(j)};
      // Cross-check the three mutual-exclusion answers on every pair,
      // not just overlapping ones: the forms disagreeing is a bug even
      // when the scheduler happened not to exploit it.
      const bool dnf_compatible = analysis.ActivationGuard(a).CompatibleWith(
          analysis.ActivationGuard(b));
      if (analysis.MutuallyExclusive(a, b) == dnf_compatible) {
        report.Add("exclusion.analysis-mismatch",
                   "analysis mutex matrix disagrees with the DNF guard "
                   "algebra for " +
                       TaskLabel(graph, a) + " / " + TaskLabel(graph, b));
      }
      if (space.valid()) {
        const bool bit_compatible =
            analysis.BitActivationGuard(a).CompatibleWith(
                analysis.BitActivationGuard(b));
        if (bit_compatible != dnf_compatible) {
          report.Add("exclusion.form-mismatch",
                     "BitGuard and DNF compatibility disagree for " +
                         TaskLabel(graph, a) + " / " + TaskLabel(graph, b));
        }
      }
      const sched::TaskPlacement& pa = schedule.placement(a);
      const sched::TaskPlacement& pb = schedule.placement(b);
      if (pa.pe != pb.pe) continue;
      const bool disjoint =
          pa.finish_ms <= pb.start_ms + Tolerance(pa.finish_ms, pb.start_ms) ||
          pb.finish_ms <= pa.start_ms + Tolerance(pb.finish_ms, pa.start_ms);
      if (!disjoint && dnf_compatible) {
        report.Add("exclusion.overlap",
                   TaskLabel(graph, a) + " [" + std::to_string(pa.start_ms) +
                       ", " + std::to_string(pa.finish_ms) + "] and " +
                       TaskLabel(graph, b) + " [" +
                       std::to_string(pb.start_ms) + ", " +
                       std::to_string(pb.finish_ms) +
                       "] overlap on one PE without exclusive guards");
      }
    }
  }
}

void CheckDeadline(const sched::Schedule& schedule, const ScheduledDag& dag,
                   const Expectations& expect, Report& report) {
  const double deadline = expect.deadline_ms > 0.0
                              ? expect.deadline_ms
                              : schedule.graph().deadline_ms();
  if (deadline <= 0.0) {
    report.Add("deadline.feasible",
               "feasibility claimed but no deadline is set");
    return;
  }
  // The guarantee applies per execution scenario, not to the all-tasks
  // static makespan (which superimposes mutually exclusive tasks).
  for (const ctg::Minterm& scenario :
       schedule.analysis().EnumerateScenarioAssignments()) {
    const InstanceEval eval = EvalInstance(
        schedule, dag, AssignmentOf(schedule.graph(), scenario), nullptr);
    if (eval.makespan_ms > deadline + Tolerance(eval.makespan_ms, deadline)) {
      report.Add("deadline.feasible",
                 "scenario " +
                     scenario.ToString([&](TaskId t) {
                       return schedule.graph().TaskName(t);
                     }) +
                     " completes at " + std::to_string(eval.makespan_ms) +
                     "ms past the deadline " + std::to_string(deadline) +
                     "ms despite the feasibility claim");
    }
  }
}

}  // namespace

bool Report::Has(std::string_view rule) const {
  return std::any_of(violations_.begin(), violations_.end(),
                     [&](const Violation& v) { return v.rule == rule; });
}

void Report::Add(std::string rule, std::string detail) {
  violations_.push_back(Violation{std::move(rule), std::move(detail)});
}

void Report::Merge(const Report& other) {
  violations_.insert(violations_.end(), other.violations_.begin(),
                     other.violations_.end());
}

std::string Report::ToString() const {
  if (ok()) return "ok";
  std::ostringstream os;
  os << "schedule-invariant violations (" << violations_.size() << "):";
  for (const Violation& v : violations_) {
    os << "\n  [" << v.rule << "] " << v.detail;
  }
  return os.str();
}

Report CheckSchedule(const sched::Schedule& schedule,
                     const Expectations& expect) {
  Report report;
  CheckPlacements(schedule, expect, report);
  if (report.Has("placement.pe")) {
    return report;  // further checks dereference the placement PEs
  }
  const ScheduledDag dag = BuildScheduledDag(schedule);
  if (!dag.acyclic) {
    report.Add("dag.acyclic", "scheduled DAG contains a cycle");
    return report;  // time/scenario checks assume an order exists
  }
  CheckPrecedence(schedule, report);
  CheckExclusion(schedule, report);
  if (expect.deadline_feasible) {
    CheckDeadline(schedule, dag, expect, report);
  }
  return report;
}

Report CheckInstance(const sched::Schedule& schedule,
                     const ctg::BranchAssignment& assignment,
                     const sim::InstanceResult& result,
                     const faults::InstanceFaults* faults) {
  Report report;
  for (TaskId t : schedule.graph().TaskIds()) {
    const PeId pe = schedule.placement(t).pe;
    if (!pe.valid() || pe.index() >= schedule.platform().pe_count()) {
      report.Add("placement.pe",
                 TaskLabel(schedule.graph(), t) + " placed on invalid PE");
      return report;  // the replay dereferences the placement PEs
    }
  }
  const ScheduledDag dag = BuildScheduledDag(schedule);
  if (!dag.acyclic) {
    report.Add("dag.acyclic", "scheduled DAG contains a cycle");
    return report;
  }
  const InstanceEval eval = EvalInstance(schedule, dag, assignment, faults);
  if (eval.active_tasks != result.active_tasks) {
    report.Add("instance.active",
               "reported " + std::to_string(result.active_tasks) +
                   " active tasks, guards activate " +
                   std::to_string(eval.active_tasks));
  }
  if (!Close(eval.makespan_ms, result.makespan_ms)) {
    report.Add("instance.makespan",
               "reported completion " + std::to_string(result.makespan_ms) +
                   "ms, independent replay gives " +
                   std::to_string(eval.makespan_ms) + "ms");
  }
  if (!Close(eval.energy_mj, result.energy_mj)) {
    report.Add("instance.energy",
               "reported energy " + std::to_string(result.energy_mj) +
                   "mJ, re-integration under E ∝ σ² gives " +
                   std::to_string(eval.energy_mj) + "mJ");
  }
  if (!Close(eval.overrun_ms, result.overrun_ms)) {
    report.Add("instance.overrun",
               "reported overrun " + std::to_string(result.overrun_ms) +
                   "ms, independent replay gives " +
                   std::to_string(eval.overrun_ms) + "ms");
  }
  if (eval.failed_pe_hits != result.failed_pe_hits) {
    report.Add("instance.failed-pe-hits",
               "reported " + std::to_string(result.failed_pe_hits) +
                   " failed-PE hits, independent replay gives " +
                   std::to_string(eval.failed_pe_hits));
  }
  const double deadline = schedule.graph().deadline_ms();
  // Only flag the deadline verdict when it is not a rounding-boundary
  // call: both evaluations use makespan <= deadline + 1e-6.
  if (eval.deadline_met != result.deadline_met && deadline > 0.0 &&
      std::abs(eval.makespan_ms - deadline) > 1e-4) {
    report.Add("instance.deadline-flag",
               std::string("reported deadline_met=") +
                   (result.deadline_met ? "true" : "false") +
                   " contradicts replayed completion " +
                   std::to_string(eval.makespan_ms) + "ms vs deadline " +
                   std::to_string(deadline) + "ms");
  }
  return report;
}

void Validate(const sched::Schedule& schedule, const Expectations& expect) {
  const Report report = CheckSchedule(schedule, expect);
  if (!report.ok()) throw InternalError(report.ToString());
}

void ValidateInstance(const sched::Schedule& schedule,
                      const ctg::BranchAssignment& assignment,
                      const sim::InstanceResult& result,
                      const faults::InstanceFaults* faults) {
  const Report report = CheckInstance(schedule, assignment, result, faults);
  if (!report.ok()) throw InternalError(report.ToString());
}

}  // namespace actg::check
