/// \file fuzz.h
/// Property-based fuzzing of the whole scheduling pipeline.
///
/// A FuzzCase is one fully concrete pipeline input: a CTG + platform
/// (structured-random via tgff, or explicit after shrinking), the
/// scheduler/stretcher knobs, an optional PE mask and FaultPlan, and the
/// seeds for branch probabilities and the executed trace. RunCase drives
/// DLS -> stretch policy -> simulation (scenario sweep + random trace,
/// optionally the adaptive controller) and feeds every intermediate
/// product to the check:: oracle; any Violation is a bug in the library,
/// never in the case.
///
/// On a failing case, Shrink greedily drops tasks, edges, faults and
/// knobs while the violation still reproduces, and Write/ParseRepro give
/// the shrunken case a replayable text form (committed under
/// tests/corpus/check/ and replayed by ctest).
///
/// Everything is deterministic: cases derive from util::Random::Fork
/// substreams of one root seed, so `actg_fuzz --seed S --cases N` is
/// exactly reproducible and any single case can be regenerated in
/// isolation.

#ifndef ACTG_CHECK_FUZZ_H
#define ACTG_CHECK_FUZZ_H

#include <cstdint>
#include <functional>
#include <istream>
#include <ostream>
#include <string>

#include "adaptive/rescheduler.h"
#include "arch/platform.h"
#include "check/validator.h"
#include "ctg/graph.h"
#include "faults/plan.h"
#include "tgff/random_ctg.h"
#include "util/error.h"
#include "util/rng.h"

namespace actg::check {

/// One concrete pipeline input. Value-semantic (graphs and platforms
/// copy), so the shrinker can propose mutated candidates freely.
struct FuzzCase {
  ctg::Ctg graph;            ///< deadline already assigned
  arch::Platform platform;
  std::string policy = "online";  ///< dvfs policy registry key
  bool mutex_aware = true;
  bool prob_weighted = true;      ///< DLS level policy
  std::uint64_t masked_pes = 0;   ///< PeMask bits (never all PEs)
  std::uint64_t prob_seed = 1;    ///< branch probabilities + trace seed
  std::size_t trace_instances = 24;
  bool adaptive = false;          ///< also run the adaptive controller
  /// Reschedule mode of the adaptive controller. Incremental cases run
  /// with verify_incremental armed, so every warm-started result is
  /// differentially checked against a from-scratch recompute inside the
  /// pipeline; table cases precompute a corner-point lattice.
  adaptive::RescheduleMode reschedule_mode = adaptive::RescheduleMode::kFull;
  bool with_faults = false;
  faults::FaultPlan faults;
};

/// Structured-random case description: the tgff generator parameters
/// plus the pipeline knobs. Kept separate from FuzzCase so a case stays
/// regenerable from its seed until shrinking makes it explicit.
struct FuzzCaseSpec {
  tgff::RandomCtgParams params;
  double deadline_factor = 2.0;
  std::string policy = "online";
  bool mutex_aware = true;
  bool prob_weighted = true;
  std::uint64_t masked_pes = 0;
  std::uint64_t prob_seed = 1;
  std::size_t trace_instances = 24;
  bool adaptive = false;
  adaptive::RescheduleMode reschedule_mode = adaptive::RescheduleMode::kFull;
  bool with_faults = false;
  faults::FaultPlan faults;
};

/// Draws a random spec for fuzz case number \p index from \p root
/// (Fork(index) substream): graph category/size, policy, knobs, mask
/// and fault plan. Always valid by construction.
FuzzCaseSpec RandomSpec(const util::Random& root, std::uint64_t index);

/// Generates the spec's graph/platform and assigns the deadline
/// (deadline_factor x nominal DLS makespan, the paper's convention).
FuzzCase Materialize(const FuzzCaseSpec& spec);

/// Branch probabilities used by RunCase: an independent random
/// distribution per fork, deterministic in (graph, seed).
ctg::BranchProbabilities CaseProbabilities(const ctg::Ctg& graph,
                                           std::uint64_t seed);

/// Runs the full pipeline on \p c and returns the merged oracle report:
///  1. DLS under the case's options  -> CheckSchedule (mask expectation)
///  2. stretch via the named policy  -> CheckSchedule, with the
///     deadline-feasibility claim iff the nominal schedule was feasible
///  3. every execution scenario      -> CheckInstance
///  4. trace_instances random instances (fault-injected when the case
///     carries a plan)               -> CheckInstance
///  5. when c.adaptive: the adaptive controller with validator hooks on
/// Exceptions escaping the pipeline are reported as a
/// "pipeline.exception" violation (the oracle must never crash).
Report RunCase(const FuzzCase& c);

/// Greedy shrink: repeatedly tries knob simplifications (drop adaptive,
/// faults, mask; simpler policy; shorter trace), task drops, edge drops
/// and PE drops, keeping every mutation for which \p still_fails holds.
/// \p still_fails must be true for \p c itself. Mutations producing
/// invalid graphs/platforms are skipped, so the result is always
/// runnable.
FuzzCase Shrink(const FuzzCase& c,
                const std::function<bool(const FuzzCase&)>& still_fails);

/// Serializes \p c in the replayable "fuzzcase v1" text format (knob
/// directives plus embedded faults-v1 / ctg-v1 / platform-v1 blocks).
void WriteRepro(std::ostream& os, const FuzzCase& c);

/// Parses a repro file; malformed input is reported as a util::Error
/// with a "fuzzcase: ..." diagnostic.
util::Expected<FuzzCase> ParseRepro(std::istream& is);

}  // namespace actg::check

#endif  // ACTG_CHECK_FUZZ_H
