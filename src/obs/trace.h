/// \file trace.h
/// Structured tracing for the framework's online decision points.
///
/// A TraceSession records nested spans (begin/end pairs with thread id,
/// category and key/value args), counter samples and per-iteration
/// timeline rows. Instrumented stages — the modified DLS, PathEngine
/// enumeration, the stretch policies, the pool workers, the simulator
/// event loop and the adaptive controller — look up the process-wide
/// session with TraceSession::Current() and record only when one is
/// installed, so with no session the entire subsystem compiles down to
/// one relaxed atomic load and a branch on nullptr per stage (and, with
/// ACTG_DISABLE_OBS, to nothing at all).
///
/// Sessions are exported through obs/export.h as Chrome trace_event
/// JSON (loadable in chrome://tracing or Perfetto) and as a
/// per-iteration CSV timeline; obs/setup.h wires --trace <file> /
/// ACTG_TRACE through the bench targets and the CLI.
///
/// Determinism contract: with TraceOptions::deterministic_clock the
/// timestamps are sequence numbers, so identical workloads produce
/// byte-identical exports; with the wall clock, the *content* (the
/// multiset of phase/name/category/args tuples) is still identical for
/// any --jobs count — only timestamps and thread ids vary.

#ifndef ACTG_OBS_TRACE_H
#define ACTG_OBS_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace actg::obs {

/// One key/value argument of a span or instant event. The value is kept
/// pre-rendered so the hot path never touches iostreams; \p quoted
/// tells the JSON exporter whether to emit it as a string.
struct TraceArg {
  std::string key;
  std::string value;
  bool quoted = false;
};

/// Integer-valued argument.
TraceArg IntArg(std::string key, std::int64_t value);
/// Floating-point argument (rendered with %.6g).
TraceArg NumArg(std::string key, double value);
/// String-valued argument (JSON-escaped by the exporter).
TraceArg StrArg(std::string key, std::string value);

/// Chrome trace_event phases the session can record.
enum class EventPhase : char {
  kBegin = 'B',    ///< span opens
  kEnd = 'E',      ///< span closes
  kCounter = 'C',  ///< counter sample
  kInstant = 'i',  ///< point event
};

/// One recorded event.
struct TraceEvent {
  EventPhase phase = EventPhase::kInstant;
  std::string name;
  std::string category;
  /// Microseconds since the session started, or a global sequence
  /// number under TraceOptions::deterministic_clock.
  std::uint64_t ts = 0;
  /// Dense thread id: threads are numbered 0, 1, ... by order of first
  /// appearance in the session.
  int tid = 0;
  std::vector<TraceArg> args;
};

/// One row of the per-iteration timeline export: the Gantt occupancy of
/// one PE during one controller iteration, merged with the DVFS stretch
/// state the iteration executed with.
struct TimelineRow {
  /// Fingerprint distinguishing concurrently traced controllers (e.g.
  /// the T=0.5 and T=0.1 harnesses of one comparison run).
  std::uint64_t unit = 0;
  std::uint64_t iteration = 0;  ///< instance index within the unit
  int pe = 0;
  int active_tasks = 0;         ///< active tasks mapped to this PE
  double busy_ms = 0.0;         ///< scaled execution time on this PE
  double mean_speed_ratio = 0.0;  ///< mean DVFS ratio of those tasks
  std::uint64_t reschedules = 0;  ///< controller reschedules so far
};

/// Session configuration.
struct TraceOptions {
  /// Replace wall-clock timestamps with sequence numbers so exports are
  /// byte-identical across runs (golden tests).
  bool deterministic_clock = false;
};

/// Thread-safe event recorder. Install one as the process-wide current
/// session with SessionGuard; instrumentation reaches it through
/// Current(). Recording locks a mutex — tracing is an opt-in diagnosis
/// tool, not a steady-state cost — but the *disabled* path (no current
/// session) is a single load + branch.
class TraceSession {
 public:
  explicit TraceSession(TraceOptions options = {});

  void BeginSpan(const char* name, const char* category,
                 std::vector<TraceArg> args = {});
  void EndSpan(const char* name, const char* category,
               std::vector<TraceArg> args = {});
  /// Records a counter sample (one "C" event with {name: value}).
  void Counter(const char* name, const char* category, double value);
  void Instant(const char* name, const char* category,
               std::vector<TraceArg> args = {});
  void AddTimelineRow(const TimelineRow& row);

  /// Snapshot of everything recorded so far.
  std::vector<TraceEvent> Events() const;
  std::vector<TimelineRow> Timeline() const;

  const TraceOptions& options() const { return options_; }

  /// The installed process-wide session, or nullptr when tracing is
  /// off. Inline: this is the only code the instrumented hot paths
  /// execute when disabled.
  static TraceSession* Current();

 private:
  friend class SessionGuard;

  void Record(EventPhase phase, const char* name, const char* category,
              std::vector<TraceArg> args);
  /// Timestamp + dense thread id; callers hold mu_.
  std::uint64_t NowLocked();
  int TidLocked();

  TraceOptions options_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::uint64_t next_seq_ = 0;
  std::map<std::thread::id, int> tids_;
  std::vector<TraceEvent> events_;
  std::vector<TimelineRow> timeline_;
};

namespace detail {
extern std::atomic<TraceSession*> g_current_session;
}  // namespace detail

inline TraceSession* TraceSession::Current() {
#ifdef ACTG_OBS_DISABLED
  return nullptr;
#else
  return detail::g_current_session.load(std::memory_order_acquire);
#endif
}

/// RAII installer of the process-wide current session; restores the
/// previously installed session (usually nullptr) on destruction.
/// Under ACTG_DISABLE_OBS installation is a no-op and Current() stays
/// nullptr, which is what the disabled-path tests assert.
class SessionGuard {
 public:
  explicit SessionGuard(TraceSession* session);
  ~SessionGuard();

  SessionGuard(const SessionGuard&) = delete;
  SessionGuard& operator=(const SessionGuard&) = delete;

 private:
  TraceSession* previous_ = nullptr;
};

/// RAII span: emits the Begin event on construction when a session is
/// active, the End event (with any args accumulated via AddArg) on
/// destruction. Constructed with TraceSession::Current() at every
/// instrumentation site, so the disabled cost is the null check.
class ScopedSpan {
 public:
  ScopedSpan(TraceSession* session, const char* name, const char* category)
      : session_(session), name_(name), category_(category) {
    if (session_ != nullptr) session_->BeginSpan(name_, category_);
  }

  ~ScopedSpan() {
    if (session_ != nullptr) {
      session_->EndSpan(name_, category_, std::move(end_args_));
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// True when the span actually records; guard arg construction with
  /// this so disabled runs never format values.
  bool enabled() const { return session_ != nullptr; }

  /// Attaches an argument to the End event (Chrome merges B/E args in
  /// the span view); call only when enabled().
  void AddArg(TraceArg arg) { end_args_.push_back(std::move(arg)); }

 private:
  TraceSession* session_;
  const char* name_;
  const char* category_;
  std::vector<TraceArg> end_args_;
};

}  // namespace actg::obs

#endif  // ACTG_OBS_TRACE_H
