#include "obs/trace.h"

#include <cstdio>
#include <utility>

namespace actg::obs {

namespace detail {
std::atomic<TraceSession*> g_current_session{nullptr};
}  // namespace detail

TraceArg IntArg(std::string key, std::int64_t value) {
  return TraceArg{std::move(key), std::to_string(value), false};
}

TraceArg NumArg(std::string key, double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return TraceArg{std::move(key), buffer, false};
}

TraceArg StrArg(std::string key, std::string value) {
  return TraceArg{std::move(key), std::move(value), true};
}

TraceSession::TraceSession(TraceOptions options)
    : options_(options), epoch_(std::chrono::steady_clock::now()) {}

std::uint64_t TraceSession::NowLocked() {
  if (options_.deterministic_clock) return next_seq_++;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

int TraceSession::TidLocked() {
  const auto [it, inserted] = tids_.try_emplace(
      std::this_thread::get_id(), static_cast<int>(tids_.size()));
  (void)inserted;
  return it->second;
}

void TraceSession::Record(EventPhase phase, const char* name,
                          const char* category,
                          std::vector<TraceArg> args) {
  const std::lock_guard<std::mutex> lock(mu_);
  TraceEvent event;
  event.phase = phase;
  event.name = name;
  event.category = category;
  event.ts = NowLocked();
  event.tid = TidLocked();
  event.args = std::move(args);
  events_.push_back(std::move(event));
}

void TraceSession::BeginSpan(const char* name, const char* category,
                             std::vector<TraceArg> args) {
  Record(EventPhase::kBegin, name, category, std::move(args));
}

void TraceSession::EndSpan(const char* name, const char* category,
                           std::vector<TraceArg> args) {
  Record(EventPhase::kEnd, name, category, std::move(args));
}

void TraceSession::Counter(const char* name, const char* category,
                           double value) {
  Record(EventPhase::kCounter, name, category, {NumArg(name, value)});
}

void TraceSession::Instant(const char* name, const char* category,
                           std::vector<TraceArg> args) {
  Record(EventPhase::kInstant, name, category, std::move(args));
}

void TraceSession::AddTimelineRow(const TimelineRow& row) {
  const std::lock_guard<std::mutex> lock(mu_);
  timeline_.push_back(row);
}

std::vector<TraceEvent> TraceSession::Events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::vector<TimelineRow> TraceSession::Timeline() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return timeline_;
}

SessionGuard::SessionGuard(TraceSession* session) {
#ifdef ACTG_OBS_DISABLED
  (void)session;
#else
  previous_ = detail::g_current_session.exchange(
      session, std::memory_order_acq_rel);
#endif
}

SessionGuard::~SessionGuard() {
#ifndef ACTG_OBS_DISABLED
  detail::g_current_session.store(previous_, std::memory_order_release);
#endif
}

}  // namespace actg::obs
