/// \file export.h
/// Exporters for recorded trace sessions.
///
/// * WriteChromeTrace — Chrome trace_event JSON ("JSON Object Format":
///   {"traceEvents": [...]}), loadable in chrome://tracing and
///   https://ui.perfetto.dev. Spans become B/E pairs, counter samples
///   "C" events, instants "i" events; every event carries pid 1 and the
///   session's dense thread ids.
/// * WriteTimelineCsv — the per-iteration timeline rows (adaptive
///   controller Gantt occupancy merged with per-PE DVFS stretch
///   factors), sorted by (unit, iteration, pe) so the file is
///   deterministic for any worker count.

#ifndef ACTG_OBS_EXPORT_H
#define ACTG_OBS_EXPORT_H

#include <ostream>

#include "obs/trace.h"

namespace actg::obs {

/// Serializes \p session's events as Chrome trace_event JSON, one event
/// per line (diff-friendly; still valid JSON).
void WriteChromeTrace(std::ostream& os, const TraceSession& session);

/// Serializes \p session's timeline rows as CSV with header
/// "unit,iteration,pe,active_tasks,busy_ms,mean_speed_ratio,reschedules".
void WriteTimelineCsv(std::ostream& os, const TraceSession& session);

}  // namespace actg::obs

#endif  // ACTG_OBS_EXPORT_H
