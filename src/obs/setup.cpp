#include "obs/setup.h"

#include <cstdlib>
#include <fstream>
#include <iostream>

#include "obs/export.h"
#include "util/atomic_file.h"
#include "util/error.h"

namespace actg::obs {

namespace {

/// <path minus extension>.timeline.csv, next to the JSON export.
std::string TimelinePath(const std::string& trace_path) {
  const std::size_t slash = trace_path.find_last_of("/\\");
  const std::size_t dot = trace_path.rfind('.');
  const bool has_ext =
      dot != std::string::npos &&
      (slash == std::string::npos || dot > slash);
  const std::string stem =
      has_ext ? trace_path.substr(0, dot) : trace_path;
  return stem + ".timeline.csv";
}

}  // namespace

std::optional<std::string> ParseTracePath(int& argc, char** argv) {
  std::optional<std::string> path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) {
      path = argv[i + 1];
      ++i;
      continue;
    }
    if (arg.rfind("--trace=", 0) == 0) {
      path = arg.substr(8);
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  if (!path.has_value()) {
    const char* env = std::getenv("ACTG_TRACE");
    if (env != nullptr && *env != '\0') path = env;
  }
  return path;
}

ScopedTracing::ScopedTracing(int& argc, char** argv,
                             TraceOptions options) {
  if (std::optional<std::string> path = ParseTracePath(argc, argv)) {
    path_ = *path;
    session_ = std::make_unique<TraceSession>(options);
    guard_ = std::make_unique<SessionGuard>(session_.get());
  }
}

ScopedTracing::~ScopedTracing() {
  if (session_ == nullptr) return;
  guard_.reset();  // uninstall before exporting
  // Atomic exports: a crash mid-write must never leave a torn trace
  // artifact behind (this is a destructor — report, never throw).
  util::AtomicFile trace_out(path_);
  if (!trace_out.ok()) {
    std::cerr << "trace: cannot open " << path_ << " for writing\n";
    return;
  }
  WriteChromeTrace(trace_out.os(), *session_);
  if (const util::Error err = trace_out.Commit(); !err.ok()) {
    std::cerr << "trace: " << err.message() << "\n";
    return;
  }
  const std::string timeline_path = TimelinePath(path_);
  util::AtomicFile timeline_out(timeline_path);
  if (!timeline_out.ok()) {
    std::cerr << "trace: cannot open " << timeline_path
              << " for writing\n";
    return;
  }
  WriteTimelineCsv(timeline_out.os(), *session_);
  if (const util::Error err = timeline_out.Commit(); !err.ok()) {
    std::cerr << "trace: " << err.message() << "\n";
    return;
  }
  std::cerr << "trace: wrote " << path_ << " ("
            << session_->Events().size() << " events) and "
            << timeline_path << " (" << session_->Timeline().size()
            << " rows)\n";
}

}  // namespace actg::obs
