#include "obs/export.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

namespace actg::obs {

namespace {

/// JSON string escaping for names, categories and string arg values.
std::string Escaped(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void WriteArgs(std::ostream& os, const std::vector<TraceArg>& args) {
  os << "\"args\":{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) os << ',';
    os << '"' << Escaped(args[i].key) << "\":";
    if (args[i].quoted) {
      os << '"' << Escaped(args[i].value) << '"';
    } else {
      os << args[i].value;
    }
  }
  os << '}';
}

}  // namespace

void WriteChromeTrace(std::ostream& os, const TraceSession& session) {
  const std::vector<TraceEvent> events = session.Events();
  os << "{\"traceEvents\":[\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    os << "{\"name\":\"" << Escaped(e.name) << "\",\"cat\":\""
       << Escaped(e.category) << "\",\"ph\":\""
       << static_cast<char>(e.phase) << "\",\"ts\":" << e.ts
       << ",\"pid\":1,\"tid\":" << e.tid;
    if (e.phase == EventPhase::kInstant) os << ",\"s\":\"t\"";
    if (!e.args.empty()) {
      os << ',';
      WriteArgs(os, e.args);
    }
    os << '}';
    if (i + 1 < events.size()) os << ',';
    os << '\n';
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
}

void WriteTimelineCsv(std::ostream& os, const TraceSession& session) {
  std::vector<TimelineRow> rows = session.Timeline();
  std::sort(rows.begin(), rows.end(),
            [](const TimelineRow& a, const TimelineRow& b) {
              if (a.unit != b.unit) return a.unit < b.unit;
              if (a.iteration != b.iteration) {
                return a.iteration < b.iteration;
              }
              return a.pe < b.pe;
            });
  os << "unit,iteration,pe,active_tasks,busy_ms,mean_speed_ratio,"
        "reschedules\n";
  char buffer[64];
  for (const TimelineRow& row : rows) {
    os << row.unit << ',' << row.iteration << ',' << row.pe << ','
       << row.active_tasks << ',';
    std::snprintf(buffer, sizeof(buffer), "%.4f", row.busy_ms);
    os << buffer << ',';
    std::snprintf(buffer, sizeof(buffer), "%.4f", row.mean_speed_ratio);
    os << buffer << ',' << row.reschedules << '\n';
  }
}

}  // namespace actg::obs
