/// \file setup.h
/// Command-line wiring of the tracing subsystem for the bench targets
/// and the CLI.
///
/// Every bench main constructs one ScopedTracing from its argc/argv.
/// When --trace <file> (or --trace=<file>, or the ACTG_TRACE
/// environment variable) names an output file, the guard creates a
/// TraceSession, installs it as the process-wide current session, and
/// on destruction writes the Chrome trace_event JSON to <file> and the
/// per-iteration timeline CSV next to it as <file minus extension>
/// .timeline.csv. Without the flag nothing is installed and the
/// instrumented stages stay on their null-session fast path.
///
/// The --trace arguments are removed from argv so downstream parsers
/// (google-benchmark's Initialize in particular) never see them.

#ifndef ACTG_OBS_SETUP_H
#define ACTG_OBS_SETUP_H

#include <memory>
#include <optional>
#include <string>

#include "obs/trace.h"

namespace actg::obs {

/// Extracts --trace <file> / --trace=<file> from argv (compacting argc/
/// argv in place) and falls back to the ACTG_TRACE environment
/// variable; nullopt when tracing was not requested.
std::optional<std::string> ParseTracePath(int& argc, char** argv);

/// RAII trace setup for a main(): parses the trace path, owns the
/// session, installs it, and writes both exports on destruction
/// (notes go to stderr so bench stdout is untouched).
class ScopedTracing {
 public:
  ScopedTracing(int& argc, char** argv, TraceOptions options = {});
  ~ScopedTracing();

  ScopedTracing(const ScopedTracing&) = delete;
  ScopedTracing& operator=(const ScopedTracing&) = delete;

  bool enabled() const { return session_ != nullptr; }
  TraceSession* session() { return session_.get(); }

 private:
  std::string path_;
  std::unique_ptr<TraceSession> session_;
  std::unique_ptr<SessionGuard> guard_;
};

}  // namespace actg::obs

#endif  // ACTG_OBS_SETUP_H
