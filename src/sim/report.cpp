#include "sim/report.h"

#include "sim/energy.h"
#include "util/table.h"

namespace actg::sim {

ScheduleReport BuildReport(const sched::Schedule& schedule,
                           const ctg::BranchProbabilities& probs) {
  const ctg::Ctg& graph = schedule.graph();
  const ctg::ActivationAnalysis& analysis = schedule.analysis();
  const arch::Platform& platform = schedule.platform();

  ScheduleReport report;
  report.makespan_ms = schedule.Makespan();
  report.deadline_ms = graph.deadline_ms();
  report.expected_energy_mj = ExpectedEnergy(schedule, probs);
  report.expected_comm_energy_mj =
      report.expected_energy_mj - ExpectedComputeEnergy(schedule, probs);

  report.pes.reserve(platform.pe_count());
  for (PeId pe : platform.PeIds()) {
    report.pes.push_back(PeReport{pe, 0, 0.0, 0.0, 0.0});
  }

  double weighted_speed = 0.0;
  double weight = 0.0;
  for (TaskId task : graph.TaskIds()) {
    const sched::TaskPlacement& placement = schedule.placement(task);
    const double p = analysis.ActivationProbability(task, probs);
    PeReport& pe_report = report.pes[placement.pe.index()];
    ++pe_report.task_count;
    pe_report.expected_busy_ms += p * schedule.ScaledWcet(task);
    pe_report.expected_energy_mj += p * schedule.ScaledEnergy(task);
    weighted_speed += p * placement.speed_ratio;
    weight += p;
  }
  for (PeReport& pe_report : report.pes) {
    pe_report.expected_utilization =
        report.makespan_ms > 0.0
            ? pe_report.expected_busy_ms / report.makespan_ms
            : 0.0;
  }
  report.mean_speed_ratio = weight > 0.0 ? weighted_speed / weight : 1.0;
  return report;
}

void WriteReport(std::ostream& os, const ScheduleReport& report) {
  os << "makespan " << util::TablePrinter::Format(report.makespan_ms, 2)
     << " ms / deadline "
     << util::TablePrinter::Format(report.deadline_ms, 2)
     << " ms; expected energy "
     << util::TablePrinter::Format(report.expected_energy_mj, 2)
     << " mJ (comm "
     << util::TablePrinter::Format(report.expected_comm_energy_mj, 2)
     << " mJ); mean speed ratio "
     << util::TablePrinter::Format(report.mean_speed_ratio, 2) << "\n";
  util::TablePrinter table(
      {"PE", "tasks", "E[busy] ms", "E[util]", "E[energy] mJ"});
  for (const PeReport& pe : report.pes) {
    table.BeginRow()
        .Cell("PE" + std::to_string(pe.pe.value))
        .Cell(pe.task_count)
        .Cell(pe.expected_busy_ms, 2)
        .Cell(util::TablePrinter::Format(100.0 * pe.expected_utilization,
                                         1) +
              "%")
        .Cell(pe.expected_energy_mj, 2);
  }
  table.Print(os);
}

namespace {

/// Counter snapshot with the health counters callers watch for always
/// materialized: guard.dnf_fallbacks stays visible (as 0) even when the
/// bitset guard algebra never fell back, and the miss/overrun/fault and
/// degradation counters stay visible (as 0) on clean runs, so their
/// absence is never mistaken for "not measured".
std::map<std::string, std::uint64_t> ReportedCounters(
    const runtime::Metrics& metrics) {
  auto counters = metrics.Counters();
  for (const char* name :
       {"guard.dnf_fallbacks", "sim.deadline_misses",
        "sim.overrun_instances", "faults.injected_instances",
        "degrade.escalations"}) {
    counters.try_emplace(name, metrics.counter(name));
  }
  return counters;
}

}  // namespace

void WriteMetricsReport(std::ostream& os,
                        const runtime::Metrics& metrics) {
  const auto counters = ReportedCounters(metrics);
  const auto timers = metrics.TimersMs();
  if (!counters.empty()) {
    util::TablePrinter table({"counter", "value"});
    for (const auto& [name, value] : counters) {
      table.BeginRow().Cell(name).Cell(value);
    }
    table.Print(os);
  }
  if (!timers.empty()) {
    util::TablePrinter table({"stage", "total ms", "calls", "ms/call"});
    for (const auto& [name, ms] : timers) {
      const std::uint64_t calls = metrics.counter(name + ".calls");
      table.BeginRow()
          .Cell(name)
          .Cell(ms, 2)
          .Cell(calls)
          .Cell(calls == 0 ? 0.0 : ms / static_cast<double>(calls), 4);
    }
    table.Print(os);
  }
}

void WriteMetricsCsv(std::ostream& os, const runtime::Metrics& metrics) {
  // Same layout as Metrics::WriteCsv, over the report's counter view
  // (guard.dnf_fallbacks always present).
  os << "metric,kind,value\n";
  for (const auto& [name, value] : ReportedCounters(metrics)) {
    os << name << ",counter," << value << "\n";
  }
  for (const auto& [name, ms] : metrics.TimersMs()) {
    os << name << ",timer_ms," << ms << "\n";
  }
}

}  // namespace actg::sim
