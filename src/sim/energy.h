/// \file energy.h
/// Analytic expected-energy evaluation of a scheduled CTG.
///
/// Under independent branch distributions, the expected energy of one
/// CTG instance is
///   E = Σ_τ P(X(τ)) · E(τ, pe_τ) · σ_τ²
///     + Σ_e P(X(src) ∧ C(e) ∧ X(dst)) · E_comm(e)
/// (computation energy scales with the square of the speed ratio;
/// communication is never voltage-scaled — paper Sections II and IV).
/// This is the quantity Table 1 compares across algorithms.

#ifndef ACTG_SIM_ENERGY_H
#define ACTG_SIM_ENERGY_H

#include "ctg/condition.h"
#include "sched/schedule.h"

namespace actg::sim {

/// Expected energy of one instance under \p probs, in mJ.
double ExpectedEnergy(const sched::Schedule& schedule,
                      const ctg::BranchProbabilities& probs);

/// Expected computation-only energy (no communication), in mJ.
double ExpectedComputeEnergy(const sched::Schedule& schedule,
                             const ctg::BranchProbabilities& probs);

/// Energy of one instance under a concrete scenario minterm: sums the
/// tasks/edges active under the scenario. Used to rank scenarios by
/// energy (the "lowest/highest energy minterm" biases of Tables 4/5).
double ScenarioEnergy(const sched::Schedule& schedule,
                      const ctg::Minterm& scenario);

}  // namespace actg::sim

#endif  // ACTG_SIM_ENERGY_H
