/// \file executor.h
/// Instance-level execution of a scheduled CTG.
///
/// Given a schedule and one branch decision vector, determines the active
/// task set, the energy actually consumed at the scheduled speeds, and
/// the actual completion time (tasks start as soon as their *active*
/// scheduled-DAG predecessors finish; or-nodes additionally wait for the
/// forks that decide their activating alternative — paper Example 1).

#ifndef ACTG_SIM_EXECUTOR_H
#define ACTG_SIM_EXECUTOR_H

#include <vector>

#include "ctg/condition.h"
#include "faults/injector.h"
#include "report/fleet_stats.h"
#include "sched/schedule.h"
#include "trace/trace.h"

namespace actg::sim {

/// Outcome of executing one CTG instance.
struct InstanceResult {
  /// Energy consumed by active tasks and transfers, mJ.
  double energy_mj = 0.0;
  /// Completion time of the last active task, ms.
  double makespan_ms = 0.0;
  /// True when makespan <= the graph deadline.
  bool deadline_met = true;
  /// Number of tasks activated by this instance.
  std::size_t active_tasks = 0;
  /// Execution time consumed beyond the scheduled (stretched) WCETs by
  /// injected overruns and re-runs, ms. Zero without fault injection.
  double overrun_ms = 0.0;
  /// Active tasks that executed on a PE flagged as failed (and paid the
  /// re-run penalty) this instance.
  std::size_t failed_pe_hits = 0;
  /// True when any fault effect was applied to this instance.
  bool faults_injected = false;
};

/// Executes one instance of the schedule under \p assignment.
InstanceResult ExecuteInstance(const sched::Schedule& schedule,
                               const ctg::BranchAssignment& assignment);

/// Executes one instance with fault effects applied: per-task execution
/// times (and dynamic energy, which scales with cycles at a fixed
/// voltage) are multiplied by the drawn overrun factors, tasks placed on
/// a failed PE pay the re-run penalty, and inter-PE communication is
/// inflated by the link-degradation factor. A null \p faults (or one
/// with no effect) reproduces the fault-free result bit for bit.
InstanceResult ExecuteInstance(const sched::Schedule& schedule,
                               const ctg::BranchAssignment& assignment,
                               const faults::InstanceFaults* faults);

/// Aggregate of a whole trace run. The shared fleet vocabulary
/// (instances / deadline_misses / total_energy_mj / max_makespan_ms /
/// reschedules plus MissRate() and AverageEnergy()) lives in
/// report::FleetStats so the simulator, the serve daemon and the
/// campaign runner name and compute these quantities identically; this
/// summary adds the fault-detection aggregates only the trace
/// simulator produces.
struct RunSummary : report::FleetStats {
  /// Fault-detection aggregates; all stay zero without injection.
  double total_overrun_ms = 0.0;
  std::size_t overrun_instances = 0;
  std::size_t failed_pe_hits = 0;
  std::size_t faulted_instances = 0;

  void Add(const InstanceResult& r);
};

/// Runs every instance of \p trace against a fixed schedule (the
/// non-adaptive / "online" configuration of Section IV).
RunSummary RunTrace(const sched::Schedule& schedule,
                    const trace::BranchTrace& trace);

/// RunTrace under fault injection: each instance executes with
/// \p injector's effects for that index, after branch-profile drift is
/// applied to a copy of the traced assignment. With an empty plan the
/// summary equals RunTrace's bit for bit.
RunSummary RunTraceWithFaults(const sched::Schedule& schedule,
                              const trace::BranchTrace& trace,
                              const faults::Injector& injector);

/// Converts a scenario minterm into a full branch assignment (forks the
/// scenario leaves unresolved stay unset; they are inactive and their
/// outcome can never matter).
ctg::BranchAssignment AssignmentFromScenario(const ctg::Ctg& graph,
                                             const ctg::Minterm& scenario);

/// Worst completion time over every execution scenario of the graph.
/// This — not the all-tasks static makespan, which superimposes
/// mutually exclusive tasks — is the quantity the deadline guarantee of
/// the stretching algorithms applies to.
double MaxScenarioMakespan(const sched::Schedule& schedule);

}  // namespace actg::sim

#endif  // ACTG_SIM_EXECUTOR_H
