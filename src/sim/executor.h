/// \file executor.h
/// Instance-level execution of a scheduled CTG.
///
/// Given a schedule and one branch decision vector, determines the active
/// task set, the energy actually consumed at the scheduled speeds, and
/// the actual completion time (tasks start as soon as their *active*
/// scheduled-DAG predecessors finish; or-nodes additionally wait for the
/// forks that decide their activating alternative — paper Example 1).

#ifndef ACTG_SIM_EXECUTOR_H
#define ACTG_SIM_EXECUTOR_H

#include <vector>

#include "ctg/condition.h"
#include "sched/schedule.h"
#include "trace/trace.h"

namespace actg::sim {

/// Outcome of executing one CTG instance.
struct InstanceResult {
  /// Energy consumed by active tasks and transfers, mJ.
  double energy_mj = 0.0;
  /// Completion time of the last active task, ms.
  double makespan_ms = 0.0;
  /// True when makespan <= the graph deadline.
  bool deadline_met = true;
  /// Number of tasks activated by this instance.
  std::size_t active_tasks = 0;
};

/// Executes one instance of the schedule under \p assignment.
InstanceResult ExecuteInstance(const sched::Schedule& schedule,
                               const ctg::BranchAssignment& assignment);

/// Aggregate of a whole trace run.
struct RunSummary {
  std::size_t instances = 0;
  double total_energy_mj = 0.0;
  std::size_t deadline_misses = 0;
  double max_makespan_ms = 0.0;

  double AverageEnergy() const {
    return instances == 0 ? 0.0
                          : total_energy_mj /
                                static_cast<double>(instances);
  }
  void Add(const InstanceResult& r);
};

/// Runs every instance of \p trace against a fixed schedule (the
/// non-adaptive / "online" configuration of Section IV).
RunSummary RunTrace(const sched::Schedule& schedule,
                    const trace::BranchTrace& trace);

/// Converts a scenario minterm into a full branch assignment (forks the
/// scenario leaves unresolved stay unset; they are inactive and their
/// outcome can never matter).
ctg::BranchAssignment AssignmentFromScenario(const ctg::Ctg& graph,
                                             const ctg::Minterm& scenario);

/// Worst completion time over every execution scenario of the graph.
/// This — not the all-tasks static makespan, which superimposes
/// mutually exclusive tasks — is the quantity the deadline guarantee of
/// the stretching algorithms applies to.
double MaxScenarioMakespan(const sched::Schedule& schedule);

}  // namespace actg::sim

#endif  // ACTG_SIM_EXECUTOR_H
