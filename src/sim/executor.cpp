#include "sim/executor.h"

#include <algorithm>

#include "obs/trace.h"
#include "runtime/metrics.h"
#include "util/error.h"

namespace actg::sim {

InstanceResult ExecuteInstance(const sched::Schedule& schedule,
                               const ctg::BranchAssignment& assignment) {
  return ExecuteInstance(schedule, assignment, nullptr);
}

InstanceResult ExecuteInstance(const sched::Schedule& schedule,
                               const ctg::BranchAssignment& assignment,
                               const faults::InstanceFaults* faults) {
  const ctg::Ctg& graph = schedule.graph();
  const ctg::ActivationAnalysis& analysis = schedule.analysis();
  const std::size_t n = graph.task_count();
  ACTG_CHECK(assignment.size() == n,
             "Assignment size does not match the graph");
  obs::ScopedSpan span(obs::TraceSession::Current(), "sim.instance",
                       "sim");

  std::vector<bool> active(n, false);
  InstanceResult result;
  for (TaskId task : graph.TaskIds()) {
    active[task.index()] = analysis.IsActive(task, assignment);
    if (active[task.index()]) ++result.active_tasks;
  }

  // Actual start times: ASAP over the scheduled DAG restricted to active
  // tasks. The scheduled DAG is acyclic, so a Kahn pass suffices; we
  // reuse the adjacency built by the schedule.
  const sched::Schedule::DagAdjacency adj = schedule.BuildDagAdjacency();
  std::vector<int> in_degree(n, 0);
  for (const auto& out : adj) {
    for (const auto& [dst, eid] : out) ++in_degree[dst.index()];
  }
  std::vector<TaskId> order;
  order.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (in_degree[i] == 0) order.push_back(TaskId{static_cast<int>(i)});
  }
  for (std::size_t head = 0; head < order.size(); ++head) {
    for (const auto& [dst, eid] : adj[order[head].index()]) {
      if (--in_degree[dst.index()] == 0) order.push_back(dst);
    }
  }
  ACTG_ASSERT(order.size() == n, "scheduled DAG contains a cycle");

  const bool faulted = faults != nullptr && faults->any;
  result.faults_injected = faulted;

  std::vector<double> ready(n, 0.0);
  std::vector<double> finish(n, 0.0);
  for (const TaskId u : order) {
    if (!active[u.index()]) continue;
    // Fault effects multiply the scheduled execution time: the drawn
    // overrun factor, plus the re-run penalty when the task's PE is in
    // this instance's failed set. Energy scales with the same factor
    // (cycles grow, the voltage of the placement does not).
    double factor = 1.0;
    if (faulted) {
      if (!faults->task_time_factor.empty()) {
        factor = faults->task_time_factor[u.index()];
      }
      if (faults->PeFailed(schedule.placement(u).pe)) {
        factor *= faults->rerun_penalty;
        ++result.failed_pe_hits;
      }
    }
    const double scaled_wcet = schedule.ScaledWcet(u);
    const double start = ready[u.index()];
    finish[u.index()] = start + scaled_wcet * factor;
    result.energy_mj += schedule.ScaledEnergy(u) * factor;
    if (factor > 1.0) result.overrun_ms += scaled_wcet * (factor - 1.0);
    result.makespan_ms = std::max(result.makespan_ms, finish[u.index()]);
    for (const auto& [dst, eid] : adj[u.index()]) {
      if (!active[dst.index()]) continue;
      double arrival = finish[u.index()];
      if (eid.has_value()) {
        const ctg::Edge& e = graph.edge(*eid);
        if (e.condition.has_value() &&
            assignment.Get(e.condition->fork) != e.condition->outcome) {
          continue;  // edge not taken in this instance
        }
        double comm = schedule.EdgeCommTime(*eid);
        if (faulted) comm *= faults->comm_time_factor;
        arrival += comm;
        result.energy_mj += schedule.EdgeCommEnergy(*eid);
      }
      ready[dst.index()] = std::max(ready[dst.index()], arrival);
    }
  }

  if (graph.deadline_ms() > 0.0) {
    result.deadline_met = result.makespan_ms <= graph.deadline_ms() + 1e-6;
  }
  if (span.enabled()) {
    span.AddArg(obs::IntArg(
        "active", static_cast<std::int64_t>(result.active_tasks)));
  }
  return result;
}

void RunSummary::Add(const InstanceResult& r) {
  ++instances;
  total_energy_mj += r.energy_mj;
  if (!r.deadline_met) {
    ++deadline_misses;
    runtime::Metrics::Global().Increment("sim.deadline_misses");
  }
  max_makespan_ms = std::max(max_makespan_ms, r.makespan_ms);
  total_overrun_ms += r.overrun_ms;
  if (r.overrun_ms > 0.0) {
    ++overrun_instances;
    runtime::Metrics::Global().Increment("sim.overrun_instances");
  }
  failed_pe_hits += r.failed_pe_hits;
  if (r.faults_injected) {
    ++faulted_instances;
    runtime::Metrics::Global().Increment("faults.injected_instances");
  }
}

RunSummary RunTrace(const sched::Schedule& schedule,
                    const trace::BranchTrace& trace) {
  const runtime::ScopedTimer stage_timer(runtime::Metrics::Global(),
                                         "stage.sim");
  obs::ScopedSpan span(obs::TraceSession::Current(), "sim.run", "sim");
  if (span.enabled()) {
    span.AddArg(obs::IntArg(
        "instances", static_cast<std::int64_t>(trace.size())));
  }
  RunSummary summary;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    summary.Add(ExecuteInstance(schedule, trace.At(i)));
  }
  return summary;
}

RunSummary RunTraceWithFaults(const sched::Schedule& schedule,
                              const trace::BranchTrace& trace,
                              const faults::Injector& injector) {
  const runtime::ScopedTimer stage_timer(runtime::Metrics::Global(),
                                         "stage.sim");
  obs::ScopedSpan span(obs::TraceSession::Current(), "sim.run", "sim");
  if (span.enabled()) {
    span.AddArg(obs::IntArg(
        "instances", static_cast<std::int64_t>(trace.size())));
    span.AddArg(obs::StrArg("faults", "injected"));
  }
  RunSummary summary;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const faults::InstanceFaults f = injector.ForInstance(i);
    ctg::BranchAssignment assignment = trace.At(i);
    injector.ApplyDrift(i, assignment);
    summary.Add(ExecuteInstance(schedule, assignment, &f));
  }
  return summary;
}

ctg::BranchAssignment AssignmentFromScenario(const ctg::Ctg& graph,
                                             const ctg::Minterm& scenario) {
  ctg::BranchAssignment assignment(graph.task_count());
  for (const ctg::Condition& c : scenario.conditions()) {
    assignment.Set(c.fork, c.outcome);
  }
  return assignment;
}

double MaxScenarioMakespan(const sched::Schedule& schedule) {
  const ctg::Ctg& graph = schedule.graph();
  double worst = 0.0;
  for (const ctg::Minterm& scenario :
       schedule.analysis().EnumerateScenarioAssignments()) {
    const InstanceResult result = ExecuteInstance(
        schedule, AssignmentFromScenario(graph, scenario));
    worst = std::max(worst, result.makespan_ms);
  }
  return worst;
}

}  // namespace actg::sim
