/// \file report.h
/// Post-scheduling analysis reports: per-PE utilization and energy
/// breakdowns, and per-scenario summaries. Used by the CLI and examples
/// to explain *where* a schedule spends its time and energy.

#ifndef ACTG_SIM_REPORT_H
#define ACTG_SIM_REPORT_H

#include <ostream>
#include <vector>

#include "ctg/condition.h"
#include "runtime/metrics.h"
#include "sched/schedule.h"

namespace actg::sim {

/// Load and energy attributed to one PE.
struct PeReport {
  PeId pe;
  /// Number of tasks mapped to the PE.
  std::size_t task_count = 0;
  /// Expected busy time per instance, ms (activation-probability
  /// weighted scaled execution times).
  double expected_busy_ms = 0.0;
  /// Expected busy time / schedule makespan.
  double expected_utilization = 0.0;
  /// Expected computation energy per instance, mJ.
  double expected_energy_mj = 0.0;
};

/// Whole-schedule report.
struct ScheduleReport {
  double makespan_ms = 0.0;
  double deadline_ms = 0.0;
  /// Expected total energy (computation + communication), mJ.
  double expected_energy_mj = 0.0;
  /// Expected communication energy, mJ.
  double expected_comm_energy_mj = 0.0;
  /// Mean speed ratio over tasks, weighted by activation probability.
  double mean_speed_ratio = 0.0;
  std::vector<PeReport> pes;
};

/// Builds the report for \p schedule under \p probs.
ScheduleReport BuildReport(const sched::Schedule& schedule,
                           const ctg::BranchProbabilities& probs);

/// Renders the report as an aligned table.
void WriteReport(std::ostream& os, const ScheduleReport& report);

/// Renders a runtime metrics registry as an aligned table: counters
/// first, then the per-stage wall-clock timers with mean cost per call.
/// Counter values are deterministic for a fixed workload; timer values
/// are wall-clock and vary run to run (keep them out of outputs that
/// must be reproducible bit-for-bit).
void WriteMetricsReport(std::ostream& os,
                        const runtime::Metrics& metrics);

/// Dumps a runtime metrics registry as CSV ("metric,kind,value").
void WriteMetricsCsv(std::ostream& os, const runtime::Metrics& metrics);

}  // namespace actg::sim

#endif  // ACTG_SIM_REPORT_H
