#include "sim/energy.h"

namespace actg::sim {

namespace {

/// Guard of the event "edge e transfers data": both endpoints active and
/// the edge condition true.
ctg::Guard EdgeGuard(const sched::Schedule& schedule, EdgeId eid) {
  const ctg::Ctg& graph = schedule.graph();
  const ctg::ActivationAnalysis& analysis = schedule.analysis();
  const auto arity = graph.ArityFn();
  const ctg::Edge& e = graph.edge(eid);
  ctg::Guard guard = analysis.ActivationGuard(e.src).And(
      analysis.ActivationGuard(e.dst), arity);
  if (e.condition.has_value()) {
    guard = guard.AndCondition(*e.condition, arity);
  }
  return guard;
}

}  // namespace

double ExpectedComputeEnergy(const sched::Schedule& schedule,
                             const ctg::BranchProbabilities& probs) {
  const ctg::Ctg& graph = schedule.graph();
  const ctg::ActivationAnalysis& analysis = schedule.analysis();
  double total = 0.0;
  for (TaskId task : graph.TaskIds()) {
    total += analysis.ActivationProbability(task, probs) *
             schedule.ScaledEnergy(task);
  }
  return total;
}

double ExpectedEnergy(const sched::Schedule& schedule,
                      const ctg::BranchProbabilities& probs) {
  const ctg::Ctg& graph = schedule.graph();
  double total = ExpectedComputeEnergy(schedule, probs);
  for (EdgeId eid : graph.EdgeIds()) {
    const double energy = schedule.EdgeCommEnergy(eid);
    if (energy <= 0.0) continue;
    total += EdgeGuard(schedule, eid).Probability(probs) * energy;
  }
  return total;
}

double ScenarioEnergy(const sched::Schedule& schedule,
                      const ctg::Minterm& scenario) {
  const ctg::Ctg& graph = schedule.graph();
  const ctg::ActivationAnalysis& analysis = schedule.analysis();
  double total = 0.0;
  for (TaskId task : graph.TaskIds()) {
    if (analysis.IsActive(task, scenario)) {
      total += schedule.ScaledEnergy(task);
    }
  }
  for (EdgeId eid : graph.EdgeIds()) {
    const double energy = schedule.EdgeCommEnergy(eid);
    if (energy <= 0.0) continue;
    const ctg::Guard guard = EdgeGuard(schedule, eid);
    bool active = false;
    for (const ctg::Minterm& m : guard.minterms()) {
      if (scenario.Implies(m)) {
        active = true;
        break;
      }
    }
    if (active) total += energy;
  }
  return total;
}

}  // namespace actg::sim
