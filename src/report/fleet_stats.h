/// \file fleet_stats.h
/// The one fleet-aggregate vocabulary every subsystem speaks.
///
/// Three layers of the library aggregate execution outcomes: the
/// trace simulator (sim::RunSummary), the serve daemon's fleet report
/// (serve::SlaReport) and the Monte-Carlo campaign runner
/// (campaign::CellStats). Before this header each of them carried its
/// own copy of the same fields with subtly different names
/// (energy_mj vs total_energy_mj) and re-implemented miss-rate and
/// average-energy arithmetic. FleetStats is the shared base: the
/// field names, the derived metrics and the merge rule are defined
/// exactly once, so a "miss rate" printed by any subsystem is the
/// same quantity computed the same way.
///
/// LatencyStats is the matching wall-clock percentile summary (serve
/// slice latencies, campaign reschedule latencies). Wall-clock data
/// never feeds deterministic reports — both consumers surface it via
/// metrics registries and bench JSON only.

#ifndef ACTG_REPORT_FLEET_STATS_H
#define ACTG_REPORT_FLEET_STATS_H

#include <cstddef>

namespace actg::report {

/// Deterministic aggregate of executed CTG instances. Every field is a
/// pure function of the per-instance results folded in, so two
/// FleetStats built from the same population are identical regardless
/// of which subsystem (simulator, daemon, campaign shard) folded them.
struct FleetStats {
  /// Instances executed.
  std::size_t instances = 0;
  /// Instances whose completion time exceeded the graph deadline.
  std::size_t deadline_misses = 0;
  /// Energy consumed by all instances, mJ.
  double total_energy_mj = 0.0;
  /// Worst completion time seen, ms.
  double max_makespan_ms = 0.0;
  /// Threshold-triggered online scheduling + DVFS invocations (the
  /// paper's "# of calls" columns). Out-of-band degradation-ladder
  /// reschedules are not included.
  std::size_t reschedules = 0;

  /// deadline_misses / instances; 0 on an empty aggregate.
  double MissRate() const {
    return instances == 0 ? 0.0
                          : static_cast<double>(deadline_misses) /
                                static_cast<double>(instances);
  }

  /// total_energy_mj / instances; 0 on an empty aggregate.
  double AverageEnergy() const {
    return instances == 0
               ? 0.0
               : total_energy_mj / static_cast<double>(instances);
  }

  /// Folds \p other in: counts and energy add, max_makespan_ms takes
  /// the max. Associative and commutative up to floating-point energy
  /// summation order; campaign shards that need bit-exact merge laws
  /// accumulate energy in fixed point (campaign::Moments) and project
  /// into FleetStats only at report time.
  void Merge(const FleetStats& other) {
    instances += other.instances;
    deadline_misses += other.deadline_misses;
    total_energy_mj += other.total_energy_mj;
    if (other.max_makespan_ms > max_makespan_ms) {
      max_makespan_ms = other.max_makespan_ms;
    }
    reschedules += other.reschedules;
  }
};

/// Wall-clock percentile summary of one latency distribution (serve
/// per-SLA slice latencies, campaign reschedule latencies). Not
/// deterministic; reported via metrics registries and bench JSON only.
struct LatencyStats {
  /// Samples observed (serve calls these slices).
  std::size_t samples = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  /// Samples that exceeded the configured budget (0 when no budget).
  std::size_t budget_overruns = 0;
};

}  // namespace actg::report

#endif  // ACTG_REPORT_FLEET_STATS_H
