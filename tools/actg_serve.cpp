/// \file actg_serve.cpp
/// The scheduling-as-a-service daemon front end.
///
///   actg_serve --requests <file> [--jobs N] [--report <file>]
///              [--metrics <file>] [--session-deadline MS]
///       Replay a serve-v1 request file: admit every tenant through the
///       admission controller, drive the fleet on N pool workers and
///       write the deterministic fleet report to stdout (or --report).
///       The report is byte-identical for any --jobs value; wall-clock
///       latency percentiles per SLA class go to stderr, and --metrics
///       dumps the full metrics registry (counters, stage timers,
///       latency distributions) as text. --session-deadline arms the
///       cooperative watchdog: a session whose round slice outlives MS
///       wall-clock milliseconds is quarantined at its next event
///       boundary instead of stalling the round (off by default — an
///       armed watchdog makes the report timing-dependent).
///
///   actg_serve synthetic <tenants> <instances> <seed>
///       Print a deterministic synthetic serve-v1 fleet (the generator
///       behind bench_serve and the determinism tests) to stdout.
///
/// Exit status: 0 on success, 1 on a malformed request file or a
/// failed replay (diagnostic on stderr), 2 on usage errors.

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "cli_common.h"
#include "runtime/pool.h"
#include "serve/request.h"
#include "serve/server.h"
#include "util/error.h"

namespace {

using namespace actg;

constexpr const char* kTool = "actg_serve";

int Usage() {
  std::cerr << "usage:\n"
            << "  actg_serve --requests <file> [--jobs N] "
               "[--report <file>] [--metrics <file>] "
               "[--session-deadline MS]\n"
            << "  actg_serve synthetic <tenants> <instances> <seed>\n";
  return 2;
}

int RunSynthetic(int argc, char** argv) {
  if (argc != 5) return Usage();
  const auto tenants = cli::ParseCount(argv[2]);
  const auto instances = cli::ParseCount(argv[3]);
  const auto seed = cli::ParseCount(argv[4]);
  if (!tenants || !instances || !seed) return Usage();
  serve::WriteServeFile(
      std::cout,
      serve::SyntheticFleet(*tenants, *instances,
                            static_cast<std::uint64_t>(*seed)));
  return 0;
}

void PrintLatency(const serve::Server& server, std::ostream& os) {
  for (std::size_t cls = 0; cls < serve::kSlaClassCount; ++cls) {
    const auto sla = static_cast<serve::SlaClass>(cls);
    const serve::LatencyStats stats = server.Latency(sla);
    os << "latency " << serve::SlaName(sla) << " slices " << stats.samples
       << " p50_ms " << stats.p50_ms << " p99_ms " << stats.p99_ms
       << " max_ms " << stats.max_ms << " budget_overruns "
       << stats.budget_overruns << "\n";
  }
}

int RunRequests(int argc, char** argv) {
  const std::size_t jobs = runtime::ParseJobs(argc, argv);
  cli::TakeFlag(argc, argv, "--jobs");
  const std::string requests_path =
      cli::TakeFlag(argc, argv, "--requests").value_or("");
  const std::string report_path =
      cli::TakeFlag(argc, argv, "--report").value_or("");
  const std::string metrics_path =
      cli::TakeFlag(argc, argv, "--metrics").value_or("");
  const std::string deadline_text =
      cli::TakeFlag(argc, argv, "--session-deadline").value_or("");
  double session_deadline_ms = 0.0;
  if (!deadline_text.empty()) {
    char* end = nullptr;
    session_deadline_ms = std::strtod(deadline_text.c_str(), &end);
    if (end == deadline_text.c_str() || *end != '\0' ||
        session_deadline_ms < 0.0) {
      return cli::Fail(kTool,
                       "--session-deadline wants a non-negative "
                       "millisecond count, got '" +
                           deadline_text + "'",
                       2);
    }
  }
  if (argc != 1) {
    cli::Fail(kTool, std::string("unknown argument '") + argv[1] + "'", 2);
    return Usage();
  }
  if (requests_path.empty()) return Usage();

  std::ifstream is(requests_path);
  if (!is) {
    return cli::Fail(kTool, "cannot open '" + requests_path + "'");
  }

  cli::ReportSink report(report_path);
  if (!report.ok()) {
    return cli::Fail(kTool, "cannot write '" + report_path + "'");
  }

  serve::ServerOptions options;
  options.jobs = jobs;
  options.session_deadline_ms = session_deadline_ms;
  auto server = serve::RunServeFile(is, options, report.os());
  if (!server.ok()) {
    return cli::Fail(kTool, server.error().message());
  }

  PrintLatency(*server.value(), std::cerr);
  return cli::DumpMetrics(kTool, metrics_path, server.value()->metrics());
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 2 && std::strcmp(argv[1], "synthetic") == 0) {
      return RunSynthetic(argc, argv);
    }
    return RunRequests(argc, argv);
  } catch (const actg::Error& e) {
    return actg::cli::Fail(kTool, e.what());
  }
}
