/// \file actg_serve.cpp
/// The scheduling-as-a-service daemon front end.
///
///   actg_serve --requests <file> [--jobs N] [--report <file>]
///              [--metrics <file>]
///       Replay a serve-v1 request file: admit every tenant through the
///       admission controller, drive the fleet on N pool workers and
///       write the deterministic fleet report to stdout (or --report).
///       The report is byte-identical for any --jobs value; wall-clock
///       latency percentiles per SLA class go to stderr, and --metrics
///       dumps the full metrics registry (counters, stage timers,
///       latency distributions) as text.
///
///   actg_serve synthetic <tenants> <instances> <seed>
///       Print a deterministic synthetic serve-v1 fleet (the generator
///       behind bench_serve and the determinism tests) to stdout.
///
/// Exit status: 0 on success, 1 on a malformed request file or a
/// failed replay (diagnostic on stderr), 2 on usage errors.

#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "runtime/pool.h"
#include "serve/request.h"
#include "serve/server.h"
#include "util/error.h"

namespace {

using namespace actg;

int Usage() {
  std::cerr << "usage:\n"
            << "  actg_serve --requests <file> [--jobs N] "
               "[--report <file>] [--metrics <file>]\n"
            << "  actg_serve synthetic <tenants> <instances> <seed>\n";
  return 2;
}

std::optional<std::size_t> ParseCount(const std::string& token) {
  try {
    std::size_t used = 0;
    const unsigned long long value = std::stoull(token, &used);
    if (used != token.size()) return std::nullopt;
    return static_cast<std::size_t>(value);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

int RunSynthetic(int argc, char** argv) {
  if (argc != 5) return Usage();
  const auto tenants = ParseCount(argv[2]);
  const auto instances = ParseCount(argv[3]);
  const auto seed = ParseCount(argv[4]);
  if (!tenants || !instances || !seed) return Usage();
  serve::WriteServeFile(
      std::cout,
      serve::SyntheticFleet(*tenants, *instances,
                            static_cast<std::uint64_t>(*seed)));
  return 0;
}

void PrintLatency(const serve::Server& server, std::ostream& os) {
  for (std::size_t cls = 0; cls < serve::kSlaClassCount; ++cls) {
    const auto sla = static_cast<serve::SlaClass>(cls);
    const serve::LatencyStats stats = server.Latency(sla);
    os << "latency " << serve::SlaName(sla) << " slices " << stats.slices
       << " p50_ms " << stats.p50_ms << " p99_ms " << stats.p99_ms
       << " max_ms " << stats.max_ms << " budget_overruns "
       << stats.budget_overruns << "\n";
  }
}

int RunRequests(int argc, char** argv) {
  const std::size_t jobs = runtime::ParseJobs(argc, argv);
  std::string requests_path;
  std::string report_path;
  std::string metrics_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto take = [&](const char* flag, std::string& out) {
      if (arg == flag && i + 1 < argc) {
        out = argv[++i];
        return true;
      }
      const std::string prefix = std::string(flag) + "=";
      if (arg.rfind(prefix, 0) == 0) {
        out = arg.substr(prefix.size());
        return true;
      }
      return false;
    };
    if (take("--requests", requests_path) ||
        take("--report", report_path) || take("--metrics", metrics_path)) {
      continue;
    }
    if (arg == "--jobs" && i + 1 < argc) {
      ++i;  // consumed by ParseJobs
      continue;
    }
    if (arg.rfind("--jobs=", 0) == 0) continue;
    std::cerr << "actg_serve: unknown argument '" << arg << "'\n";
    return Usage();
  }
  if (requests_path.empty()) return Usage();

  std::ifstream is(requests_path);
  if (!is) {
    std::cerr << "actg_serve: cannot open '" << requests_path << "'\n";
    return 1;
  }

  std::ofstream report_file;
  if (!report_path.empty()) {
    report_file.open(report_path);
    if (!report_file) {
      std::cerr << "actg_serve: cannot write '" << report_path << "'\n";
      return 1;
    }
  }
  std::ostream& report_os =
      report_path.empty() ? std::cout : report_file;

  auto server = serve::RunServeFile(is, jobs, report_os);
  if (!server.ok()) {
    std::cerr << "actg_serve: " << server.error().message() << "\n";
    return 1;
  }

  PrintLatency(*server.value(), std::cerr);
  if (!metrics_path.empty()) {
    std::ofstream metrics_os(metrics_path);
    if (!metrics_os) {
      std::cerr << "actg_serve: cannot write '" << metrics_path << "'\n";
      return 1;
    }
    server.value()->metrics().WriteText(metrics_os);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 2 && std::strcmp(argv[1], "synthetic") == 0) {
      return RunSynthetic(argc, argv);
    }
    return RunRequests(argc, argv);
  } catch (const actg::Error& e) {
    std::cerr << "actg_serve: " << e.what() << "\n";
    return 1;
  }
}
