#include "cli_common.h"

#include <iostream>

#include "util/atomic_file.h"
#include "util/error.h"

namespace actg::cli {

std::optional<std::string> FindFlag(int argc, char** argv,
                                    std::string_view flag) {
  const std::string prefix = std::string(flag) + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == flag && i + 1 < argc) return std::string(argv[i + 1]);
    if (arg.rfind(prefix, 0) == 0) {
      return std::string(arg.substr(prefix.size()));
    }
  }
  return std::nullopt;
}

std::string StringFlag(int argc, char** argv, std::string_view flag,
                       std::string fallback) {
  return FindFlag(argc, argv, flag).value_or(std::move(fallback));
}

std::size_t CountFlag(int argc, char** argv, std::string_view flag,
                      std::size_t fallback) {
  const std::optional<std::string> value = FindFlag(argc, argv, flag);
  if (!value.has_value()) return fallback;
  return ParseCount(*value).value_or(fallback);
}

std::uint64_t SeedFlag(int argc, char** argv, std::uint64_t fallback) {
  return static_cast<std::uint64_t>(CountFlag(
      argc, argv, "--seed", static_cast<std::size_t>(fallback)));
}

std::optional<std::size_t> ParseCount(const std::string& token) {
  try {
    std::size_t used = 0;
    const unsigned long long value = std::stoull(token, &used);
    if (used != token.size()) return std::nullopt;
    return static_cast<std::size_t>(value);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<std::string> TakeFlag(int& argc, char** argv,
                                    std::string_view flag) {
  const std::string prefix = std::string(flag) + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    int consumed = 0;
    std::string value;
    if (arg == flag && i + 1 < argc) {
      value = argv[i + 1];
      consumed = 2;
    } else if (arg.rfind(prefix, 0) == 0) {
      value = std::string(arg.substr(prefix.size()));
      consumed = 1;
    }
    if (consumed == 0) continue;
    for (int j = i + consumed; j < argc; ++j) argv[j - consumed] = argv[j];
    argc -= consumed;
    return value;
  }
  return std::nullopt;
}

bool TakeSwitch(int& argc, char** argv, std::string_view flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) != flag) continue;
    for (int j = i + 1; j < argc; ++j) argv[j - 1] = argv[j];
    --argc;
    return true;
  }
  return false;
}

int Fail(std::string_view tool, std::string_view message, int status) {
  std::cerr << tool << ": " << message << "\n";
  return status;
}

ReportSink::ReportSink(const std::string& path) : path_(path) {
  if (path_.empty()) {
    os_ = &std::cout;
    ok_ = true;
    return;
  }
  file_.open(path_);
  os_ = &file_;
  ok_ = bool(file_);
}

int DumpMetrics(std::string_view tool, const std::string& path,
                const runtime::Metrics& metrics) {
  if (path.empty()) return 0;
  util::AtomicFile file(path);
  if (!file.ok()) return Fail(tool, "cannot write '" + path + "'");
  metrics.WriteText(file.os());
  const util::Error err = file.Commit();
  if (!err.ok()) return Fail(tool, err.message());
  return 0;
}

}  // namespace actg::cli
