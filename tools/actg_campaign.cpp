/// \file actg_campaign.cpp
/// The fleet-scale Monte-Carlo campaign front end.
///
///   actg_campaign --campaign <file> [--jobs N] [--report <file>]
///                 [--metrics <file>] [--population-only]
///                 [--checkpoint <dir>] [--checkpoint-every N]
///                 [--resume] [--quarantine <dir>]
///       Run a campaign-v1 file: partition the population into shards,
///       simulate every instance through its adaptive controller on N
///       pool workers and write the deterministic report to stdout (or
///       --report). The report is byte-identical for any --jobs value;
///       --population-only restricts it to the population section,
///       which is additionally invariant to the shard count. Wall-clock
///       reschedule-latency percentiles go to stderr, and --metrics
///       dumps the merged per-shard metrics registries as text.
///
///       --checkpoint <dir> makes the run crash-safe: completed shards
///       are durably checkpointed to <dir>/campaign.ckpt (atomic
///       write-to-temp + rename) after every --checkpoint-every shard
///       completions (default 1). --resume restores the completed
///       shards of a previous (killed) run from that file first — the
///       resumed report is byte-identical to an uninterrupted run at
///       any --jobs. A checkpoint written for a different campaign file
///       is rejected by its spec fingerprint. --quarantine <dir> makes
///       every quarantined poison instance (spec quarantine_cap > 0)
///       emit a replayable repro to <dir>/quarantine-<seed>-<index>
///       .fuzzcase, `actg_fuzz --replay` compatible.
///
///   actg_campaign synthetic <instances> <seed>
///       Print the deterministic synthetic campaign (the generator
///       behind bench_campaign and the determinism tests) to stdout.
///
/// Exit status: 0 on success, 1 on a malformed campaign file or a
/// failed run (diagnostic on stderr), 2 on usage errors.

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "campaign/runner.h"
#include "campaign/spec.h"
#include "cli_common.h"
#include "runtime/pool.h"
#include "util/error.h"

namespace {

using namespace actg;

constexpr const char* kTool = "actg_campaign";

int Usage() {
  std::cerr << "usage:\n"
            << "  actg_campaign --campaign <file> [--jobs N] "
               "[--report <file>] [--metrics <file>] "
               "[--population-only]\n"
            << "                [--checkpoint <dir>] "
               "[--checkpoint-every N] [--resume] "
               "[--quarantine <dir>]\n"
            << "  actg_campaign synthetic <instances> <seed>\n";
  return 2;
}

int RunSynthetic(int argc, char** argv) {
  if (argc != 4) return Usage();
  const auto instances = cli::ParseCount(argv[2]);
  const auto seed = cli::ParseCount(argv[3]);
  if (!instances || !seed) return Usage();
  campaign::WriteCampaignFile(
      std::cout, campaign::SyntheticCampaign(
                     *instances, static_cast<std::uint64_t>(*seed)));
  return 0;
}

int RunCampaign(int argc, char** argv) {
  const std::size_t jobs = runtime::ParseJobs(argc, argv);
  cli::TakeFlag(argc, argv, "--jobs");
  const std::string campaign_path =
      cli::TakeFlag(argc, argv, "--campaign").value_or("");
  const std::string report_path =
      cli::TakeFlag(argc, argv, "--report").value_or("");
  const std::string metrics_path =
      cli::TakeFlag(argc, argv, "--metrics").value_or("");
  const bool population_only =
      cli::TakeSwitch(argc, argv, "--population-only");
  const std::string checkpoint_dir =
      cli::TakeFlag(argc, argv, "--checkpoint").value_or("");
  const std::string checkpoint_every_text =
      cli::TakeFlag(argc, argv, "--checkpoint-every").value_or("");
  const bool resume = cli::TakeSwitch(argc, argv, "--resume");
  const std::string quarantine_dir =
      cli::TakeFlag(argc, argv, "--quarantine").value_or("");
  std::size_t checkpoint_every = 1;
  if (!checkpoint_every_text.empty()) {
    const auto parsed = cli::ParseCount(checkpoint_every_text);
    if (!parsed || *parsed == 0) {
      return cli::Fail(kTool,
                       "--checkpoint-every wants a positive count, got '" +
                           checkpoint_every_text + "'",
                       2);
    }
    checkpoint_every = *parsed;
  }
  if ((resume || !checkpoint_every_text.empty()) &&
      checkpoint_dir.empty()) {
    return cli::Fail(
        kTool, "--resume / --checkpoint-every need --checkpoint <dir>", 2);
  }
  if (argc != 1) {
    cli::Fail(kTool, std::string("unknown argument '") + argv[1] + "'", 2);
    return Usage();
  }
  if (campaign_path.empty()) return Usage();

  std::ifstream is(campaign_path);
  if (!is) {
    return cli::Fail(kTool, "cannot open '" + campaign_path + "'");
  }

  util::Expected<campaign::CampaignSpec> spec =
      campaign::ParseCampaignFile(is);
  if (!spec.ok()) return cli::Fail(kTool, spec.error().message());

  cli::ReportSink report(report_path);
  if (!report.ok()) {
    return cli::Fail(kTool, "cannot write '" + report_path + "'");
  }

  campaign::CampaignOptions options;
  options.jobs = jobs;
  options.checkpoint_dir = checkpoint_dir;
  options.checkpoint_every = checkpoint_every;
  options.quarantine_dir = quarantine_dir;
  campaign::Campaign run(std::move(spec).value(), options);
  if (resume) {
    const std::size_t restored = run.Resume();
    if (restored > 0) {
      std::cerr << kTool << ": resumed " << restored
                << " completed shard(s) from " << checkpoint_dir
                << "/campaign.ckpt\n";
    }
  }
  const campaign::CampaignResult& result = run.Run();
  if (population_only) {
    result.WritePopulation(report.os());
  } else {
    result.Write(report.os());
  }

  const report::LatencyStats latency = run.RescheduleLatency();
  std::cerr << "reschedule_latency samples " << latency.samples
            << " p50_ms " << latency.p50_ms << " p99_ms "
            << latency.p99_ms << " max_ms " << latency.max_ms << "\n";
  return cli::DumpMetrics(kTool, metrics_path, run.metrics());
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 2 && std::strcmp(argv[1], "synthetic") == 0) {
      return RunSynthetic(argc, argv);
    }
    return RunCampaign(argc, argv);
  } catch (const actg::Error& e) {
    return cli::Fail(kTool, e.what());
  }
}
