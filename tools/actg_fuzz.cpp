/// \file actg_fuzz.cpp
/// Property-based fuzzer for the whole scheduling pipeline.
///
///   actg_fuzz --cases N [--seed S] [--start K] [--out DIR]
///       Generate N structured-random cases from root seed S (case k is
///       a pure function of (S, K + k)), run DLS -> stretch -> simulate
///       on each and oracle-check every product. Any violation is
///       greedily shrunk and written as a replayable repro file
///       repro-<seed>-<index>.fuzzcase under DIR (default: current
///       directory). Exit status 1 when any case failed.
///   actg_fuzz --replay FILE...
///       Re-run committed repro files (tests/corpus/check/*.fuzzcase)
///       through the same pipeline + oracle. Exit 1 on any violation.
///   actg_fuzz --emit N DIR [--seed S] [--start K]
///       Write the repro files of cases K..K+N-1 to DIR without running
///       them (corpus seeding).
///
/// Everything is deterministic: a failing (seed, index) pair printed by
/// a CI run reproduces locally with --cases 1 --seed S --start INDEX.

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "check/fuzz.h"
#include "check/validator.h"
#include "cli_common.h"
#include "util/atomic_file.h"
#include "util/error.h"
#include "util/rng.h"

namespace {

using namespace actg;

int Usage() {
  std::cerr
      << "usage: actg_fuzz --cases N [--seed S] [--start K] [--out DIR]\n"
      << "       actg_fuzz --replay FILE...\n"
      << "       actg_fuzz --emit N DIR [--seed S] [--start K]\n";
  return 2;
}

std::string ReproPath(const std::string& out_dir, std::uint64_t seed,
                      std::uint64_t index) {
  std::ostringstream name;
  name << "repro-" << seed << "-" << index << ".fuzzcase";
  return (std::filesystem::path(out_dir) / name.str()).string();
}

/// Shrinks the failing case against "any violation of the same leading
/// rule still fires" and writes the repro. Returns the repro path.
std::string ShrinkAndDump(const check::FuzzCase& failing,
                          const check::Report& report,
                          const std::string& out_dir, std::uint64_t seed,
                          std::uint64_t index) {
  const std::string rule = report.violations().front().rule;
  const check::FuzzCase shrunk = check::Shrink(
      failing, [&rule](const check::FuzzCase& cand) {
        return check::RunCase(cand).Has(rule);
      });
  std::filesystem::create_directories(out_dir);
  const std::string path = ReproPath(out_dir, seed, index);
  util::AtomicFile file(path);
  file.os() << "# rule: " << rule << "\n";
  file.os() << "# seed " << seed << " index " << index << "\n";
  check::WriteRepro(file.os(), shrunk);
  file.Commit().ThrowIfError();
  return path;
}

int RunFuzz(std::uint64_t cases, std::uint64_t seed, std::uint64_t start,
            const std::string& out_dir) {
  const util::Random root(seed);
  std::uint64_t failures = 0;
  for (std::uint64_t i = start; i < start + cases; ++i) {
    const check::FuzzCase c = check::Materialize(check::RandomSpec(root, i));
    const check::Report report = check::RunCase(c);
    if (!report.ok()) {
      ++failures;
      std::cerr << "FAIL seed=" << seed << " index=" << i << "\n"
                << report.ToString() << "\n";
      const std::string path =
          ShrinkAndDump(c, report, out_dir, seed, i);
      std::cerr << "repro written to " << path << "\n";
    }
    if ((i - start + 1) % 100 == 0) {
      std::cout << (i - start + 1) << "/" << cases << " cases, "
                << failures << " failure(s)\n";
    }
  }
  std::cout << "ran " << cases << " case(s), seed " << seed << ", "
            << failures << " failure(s)\n";
  return failures == 0 ? 0 : 1;
}

int RunReplay(const std::vector<std::string>& files) {
  int status = 0;
  for (const std::string& file : files) {
    std::ifstream is(file);
    if (!is) {
      std::cerr << file << ": cannot open\n";
      status = 1;
      continue;
    }
    // Skip leading comment lines (ShrinkAndDump prefixes provenance).
    while (is.peek() == '#') {
      std::string skipped;
      std::getline(is, skipped);
    }
    util::Expected<check::FuzzCase> c = check::ParseRepro(is);
    if (!c.ok()) {
      std::cerr << file << ": " << c.error().message() << "\n";
      status = 1;
      continue;
    }
    const check::Report report = check::RunCase(c.value());
    if (report.ok()) {
      std::cout << file << ": ok\n";
    } else {
      std::cerr << file << ": FAIL\n" << report.ToString() << "\n";
      status = 1;
    }
  }
  return status;
}

int RunEmit(std::uint64_t count, const std::string& out_dir,
            std::uint64_t seed, std::uint64_t start) {
  const util::Random root(seed);
  std::filesystem::create_directories(out_dir);
  for (std::uint64_t i = start; i < start + count; ++i) {
    const check::FuzzCase c = check::Materialize(check::RandomSpec(root, i));
    const std::string path = ReproPath(out_dir, seed, i);
    util::AtomicFile file(path);
    file.os() << "# seed " << seed << " index " << i << "\n";
    check::WriteRepro(file.os(), c);
    file.Commit().ThrowIfError();
    std::cout << path << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cases = cli::CountFlag(argc, argv, "--cases", 0);
  const std::uint64_t seed = cli::SeedFlag(argc, argv, 1);
  const auto start =
      static_cast<std::uint64_t>(cli::CountFlag(argc, argv, "--start", 0));
  const std::string out_dir = cli::StringFlag(argc, argv, "--out", ".");
  cli::TakeFlag(argc, argv, "--cases");
  cli::TakeFlag(argc, argv, "--seed");
  cli::TakeFlag(argc, argv, "--start");
  cli::TakeFlag(argc, argv, "--out");
  std::vector<std::string> replay;
  std::uint64_t emit_count = 0;
  std::string emit_dir;
  bool emit = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--replay") {
      while (i + 1 < argc && argv[i + 1][0] != '-') {
        replay.emplace_back(argv[++i]);
      }
      if (replay.empty()) return Usage();
    } else if (arg == "--emit") {
      const char* n = next();
      const char* d = next();
      if (n == nullptr || d == nullptr) return Usage();
      emit = true;
      emit_count = std::strtoull(n, nullptr, 10);
      emit_dir = d;
    } else {
      cli::Fail("actg_fuzz", "unknown argument '" + arg + "'", 2);
      return Usage();
    }
  }

  try {
    if (!replay.empty()) return RunReplay(replay);
    if (emit) return RunEmit(emit_count, emit_dir, seed, start);
    if (cases == 0) return Usage();
    return RunFuzz(cases, seed, start, out_dir);
  } catch (const std::exception& e) {
    // RunCase contains pipeline exceptions; anything escaping here is a
    // bug in the fuzzer itself.
    std::cerr << "fatal: " << e.what() << "\n";
    return 3;
  }
}
