#!/usr/bin/env python3
"""Validate an obs --trace export against docs/trace_event.schema.json.

Usage: validate_trace.py <trace.json> [schema.json]

Stdlib-only: implements the small JSON Schema subset the snippet uses
(type / required / properties / items / enum / minimum), so CI needs no
jsonschema package. Beyond the schema it also checks the semantic
invariant the exporter guarantees: per (pid, tid), B and E events
balance and never close an unopened span.
"""

import json
import sys
from pathlib import Path

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
}


def validate(instance, schema, path="$"):
    errors = []
    expected = schema.get("type")
    if expected is not None:
        python_type = TYPES[expected]
        ok = isinstance(instance, python_type)
        if expected == "integer" and isinstance(instance, bool):
            ok = False
        if not ok:
            return [f"{path}: expected {expected}, got {type(instance).__name__}"]
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(instance, (int, float)):
        if instance < schema["minimum"]:
            errors.append(f"{path}: {instance} < minimum {schema['minimum']}")
    if isinstance(instance, dict):
        for key in schema.get("required", []):
            if key not in instance:
                errors.append(f"{path}: missing required key '{key}'")
        for key, subschema in schema.get("properties", {}).items():
            if key in instance:
                errors.extend(validate(instance[key], subschema, f"{path}.{key}"))
    if isinstance(instance, list) and "items" in schema:
        for i, item in enumerate(instance):
            errors.extend(validate(item, schema["items"], f"{path}[{i}]"))
    return errors


def check_span_balance(events):
    errors = []
    stacks = {}
    for i, event in enumerate(events):
        key = (event.get("pid"), event.get("tid"))
        stack = stacks.setdefault(key, [])
        if event.get("ph") == "B":
            stack.append(event.get("name"))
        elif event.get("ph") == "E":
            if not stack:
                errors.append(f"event {i}: E '{event.get('name')}' closes an unopened span on tid {key[1]}")
            elif stack[-1] != event.get("name"):
                errors.append(f"event {i}: E '{event.get('name')}' mismatches open span '{stack[-1]}'")
            else:
                stack.pop()
    for (_, tid), stack in stacks.items():
        if stack:
            errors.append(f"tid {tid}: {len(stack)} span(s) never closed: {stack}")
    return errors


def main(argv):
    if len(argv) not in (2, 3):
        print(__doc__)
        return 2
    trace_path = Path(argv[1])
    schema_path = (
        Path(argv[2])
        if len(argv) == 3
        else Path(__file__).resolve().parent.parent / "docs" / "trace_event.schema.json"
    )
    trace = json.loads(trace_path.read_text())
    schema = json.loads(schema_path.read_text())

    errors = validate(trace, schema)
    errors.extend(check_span_balance(trace.get("traceEvents", [])))
    if errors:
        for error in errors[:25]:
            print(f"FAIL {error}")
        print(f"{trace_path}: {len(errors)} error(s)")
        return 1
    events = trace["traceEvents"]
    names = sorted({e["name"] for e in events})
    print(f"OK {trace_path}: {len(events)} events, names: {', '.join(names)}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
