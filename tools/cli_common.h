/// \file cli_common.h
/// Shared command-line plumbing for the actg front ends.
///
/// Every tool and bench grew its own copy of the same three helpers —
/// a string-flag scanner, a numeric-flag scanner and an output-file
/// opener — with subtly different spellings and diagnostics. This
/// header is the one copy: actg_cli, actg_serve, actg_fuzz,
/// actg_campaign and the bench binaries all parse --jobs / --seed /
/// --report / --metrics / --trace (and their tool-specific flags)
/// through it, and all failures print the one pinned diagnostic format
///
///   <tool>: <message>
///
/// Flag grammar, shared by every helper: `--flag value` or
/// `--flag=value`, first occurrence wins (matching
/// runtime::ParseJobs).

#ifndef ACTG_TOOLS_CLI_COMMON_H
#define ACTG_TOOLS_CLI_COMMON_H

#include <cstdint>
#include <fstream>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>

#include "runtime/metrics.h"

namespace actg::cli {

/// First `--flag value` / `--flag=value` occurrence; nullopt when the
/// flag is absent (or present without a value).
std::optional<std::string> FindFlag(int argc, char** argv,
                                    std::string_view flag);

/// FindFlag with a fallback.
std::string StringFlag(int argc, char** argv, std::string_view flag,
                       std::string fallback);

/// Numeric FindFlag; \p fallback when absent or unparsable (the lenient
/// semantics every bench always had).
std::size_t CountFlag(int argc, char** argv, std::string_view flag,
                      std::size_t fallback);

/// CountFlag("--seed") as a 64-bit seed.
std::uint64_t SeedFlag(int argc, char** argv, std::uint64_t fallback);

/// Strict non-negative integer parse of one token; nullopt on garbage
/// or trailing characters (positional arguments, where a typo must not
/// silently become a default).
std::optional<std::size_t> ParseCount(const std::string& token);

/// Removes the first `--flag value` / `--flag=value` from argv
/// (compacting it) and returns the value; nullopt — and argv untouched
/// — when absent. For tools that mix flags with positional arguments.
std::optional<std::string> TakeFlag(int& argc, char** argv,
                                    std::string_view flag);

/// Removes a bare `--flag` switch from argv; true when it was present.
bool TakeSwitch(int& argc, char** argv, std::string_view flag);

/// The pinned diagnostic: prints "<tool>: <message>" to stderr and
/// returns \p status, so call sites read `return Fail(...)`.
int Fail(std::string_view tool, std::string_view message, int status = 1);

/// Where a deterministic report goes: the --report file when given,
/// stdout otherwise. ok() is false when the file cannot be opened.
class ReportSink {
 public:
  /// Empty \p path selects stdout.
  explicit ReportSink(const std::string& path);

  bool ok() const { return ok_; }
  std::ostream& os() { return *os_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream file_;
  std::ostream* os_;
  bool ok_;
};

/// Writes the registry's text dump to \p path when non-empty. Returns 0,
/// or Fail(tool, ...) when the file cannot be written.
int DumpMetrics(std::string_view tool, const std::string& path,
                const runtime::Metrics& metrics);

}  // namespace actg::cli

#endif  // ACTG_TOOLS_CLI_COMMON_H
