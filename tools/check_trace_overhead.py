#!/usr/bin/env python3
"""Gate the disabled-tracing overhead of the obs subsystem.

Usage: check_trace_overhead.py <default_build.json> <disable_obs_build.json> [max_ratio]

Both inputs are google-benchmark --benchmark_format=json outputs of
BM_RescheduleEngine: the first from the default build (tracing compiled
in, no session installed — the null-session fast path), the second from
a -DACTG_DISABLE_OBS=ON build (tracing compiled out entirely). The gate
compares the min real_time across repetitions per benchmark and fails
when the null-session path is more than max_ratio (default 1.02, the
<2% requirement) of the compiled-out time. Use several repetitions; the
min filters scheduler noise.
"""

import json
import sys


def min_times(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for bench in data["benchmarks"]:
        if bench.get("run_type") not in (None, "iteration"):
            continue
        name = bench.get("run_name", bench["name"])
        out[name] = min(out.get(name, float("inf")), bench["real_time"])
    return out


def main(argv):
    if len(argv) not in (3, 4):
        print(__doc__)
        return 2
    max_ratio = float(argv[3]) if len(argv) == 4 else 1.02
    enabled = min_times(argv[1])
    disabled = min_times(argv[2])
    common = sorted(set(enabled) & set(disabled))
    if not common:
        print("FAIL: no common benchmarks between the two files")
        return 1
    failed = False
    for name in common:
        ratio = enabled[name] / disabled[name]
        status = "OK" if ratio <= max_ratio else "FAIL"
        failed |= ratio > max_ratio
        print(
            f"{status} {name}: null-session {enabled[name]:.0f}ns vs "
            f"compiled-out {disabled[name]:.0f}ns (ratio {ratio:.4f}, "
            f"gate {max_ratio:.2f})"
        )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
