/// \file random_ctg_explorer.cpp
/// Explorer for the random-CTG generator: builds a graph with the given
/// (tasks/PEs/forks) triplet, prints its structure and the energy of the
/// three scheduling + DVFS pipelines (Reference 1, Reference 2, online)
/// across a sweep of deadline factors.
///
///   ./random_ctg_explorer [tasks] [pes] [forks] [category 1|2] [seed]

#include <cstdlib>
#include <iostream>

#include "apps/common.h"
#include "ctg/activation.h"
#include "ctg/dot.h"
#include "dvfs/algorithms.h"
#include "sim/energy.h"
#include "tgff/random_ctg.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace actg;

  tgff::RandomCtgParams params;
  params.task_count = argc > 1 ? std::atoi(argv[1]) : 25;
  params.pe_count = argc > 2 ? std::atoi(argv[2]) : 3;
  params.fork_count = argc > 3 ? std::atoi(argv[3]) : 3;
  params.category = (argc > 4 && std::atoi(argv[4]) == 2)
                        ? tgff::Category::kFlat
                        : tgff::Category::kForkJoin;
  params.seed = argc > 5 ? static_cast<std::uint64_t>(std::atoll(argv[5]))
                         : 1234;

  tgff::RandomCase rc = tgff::MakeRandomCtg(params).value();
  const ctg::ActivationAnalysis analysis(rc.graph);
  const auto name = [&](TaskId t) { return rc.graph.TaskName(t); };

  std::cout << "Generated CTG " << params.task_count << "/"
            << params.pe_count << "/" << params.fork_count
            << " (category "
            << (params.category == tgff::Category::kForkJoin ? 1 : 2)
            << ", seed " << params.seed << "): "
            << rc.graph.edge_count() << " edges, "
            << analysis.EnumerateScenarioAssignments().size()
            << " execution scenarios\n";
  std::cout << "Fork guards:\n";
  for (TaskId fork : rc.graph.ForkIds()) {
    std::cout << "  " << rc.graph.TaskName(fork) << ": X = "
              << analysis.ActivationGuard(fork).ToString(name) << "\n";
  }

  // Random branch probabilities, as in the paper's Table 1 protocol.
  util::Random rng(params.seed ^ 0xBEEF);
  ctg::BranchProbabilities probs(rc.graph.task_count());
  for (TaskId fork : rc.graph.ForkIds()) {
    const double p = rng.Uniform(0.1, 0.9);
    probs.Set(fork, {p, 1.0 - p});
  }

  std::cout << "\nExpected energy (mJ) by algorithm and deadline "
               "tightness:\n";
  util::TablePrinter table({"deadline factor", "Reference 1",
                            "Reference 2 (NLP)", "Online",
                            "Ref1/Online"});
  for (double factor : {1.1, 1.3, 1.6, 2.0}) {
    apps::AssignDeadline(rc.graph, rc.platform, factor);
    const auto ref1 =
        dvfs::RunReference1(rc.graph, analysis, rc.platform, probs);
    const auto ref2 =
        dvfs::RunReference2(rc.graph, analysis, rc.platform, probs);
    const auto online =
        dvfs::RunOnlineAlgorithm(rc.graph, analysis, rc.platform, probs);
    const double e1 = sim::ExpectedEnergy(ref1, probs);
    const double e2 = sim::ExpectedEnergy(ref2, probs);
    const double eo = sim::ExpectedEnergy(online, probs);
    table.BeginRow()
        .Cell(factor, 1)
        .Cell(e1, 1)
        .Cell(e2, 1)
        .Cell(eo, 1)
        .Cell(e1 / eo, 2);
  }
  table.Print(std::cout);

  std::cout << "\nTighter deadlines squeeze every algorithm toward "
               "nominal speed; the online algorithm keeps its edge over "
               "the probability-blind reference across the sweep.\n";
  return 0;
}
