/// \file actg_cli.cpp
/// Command-line driver around the library's file format, for using the
/// framework without writing C++:
///
///   actg_cli generate <tasks> <pes> <forks> <category 1|2> <seed> <prefix>
///       Generate a random CTG + platform and write <prefix>_ctg.txt /
///       <prefix>_platform.txt.
///   actg_cli schedule <ctg.txt> <platform.txt> [ref1|ref2|--policy <p>]
///       Schedule + stretch (default: the online algorithm) and print
///       the Gantt chart and expected energy under uniform
///       probabilities. --policy selects any registered stretch policy
///       by name (see dvfs::PolicyNames); ref1/ref2 run the paper's
///       reference pipelines.
///   actg_cli simulate <ctg.txt> <platform.txt> <instances> <seed>
///       Drive the graph with equal-average fluctuating vectors and
///       compare the non-adaptive online algorithm against the adaptive
///       controller at thresholds 0.5 and 0.1. With --faults <plan>
///       the run additionally injects the plan's faults (seeded from
///       <seed> unless the plan pins its own) and engages the adaptive
///       controller's graceful-degradation ladder; --no-degrade keeps
///       the ladder off for ablation. Without --faults the output is
///       identical to previous releases.
///       --reschedule-mode <full|incremental|table> selects how the
///       adaptive controller recomputes on a threshold crossing: a full
///       DLS + stretch pass (default, the reference semantics),
///       warm-started incremental DLS, or selection from a precomputed
///       schedule table (see adaptive::RescheduleMode).
///
/// Every command also understands --trace <file> (or the ACTG_TRACE
/// environment variable): the run's instrumented stages are written as
/// Chrome trace_event JSON to <file> plus a per-iteration timeline CSV
/// next to it.

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "apps/common.h"
#include "cli_common.h"
#include "ctg/activation.h"
#include "dvfs/algorithms.h"
#include "dvfs/policy.h"
#include "experiments.h"
#include "faults/injector.h"
#include "faults/plan.h"
#include "io/text_format.h"
#include "obs/setup.h"
#include "sched/gantt.h"
#include "sim/energy.h"
#include "sim/executor.h"
#include "sim/report.h"
#include "tgff/random_ctg.h"
#include "util/error.h"
#include "util/table.h"

namespace {

using namespace actg;

int Usage() {
  std::string policies;
  for (const std::string& name : dvfs::PolicyNames()) {
    if (!policies.empty()) policies += "|";
    policies += name;
  }
  std::cerr
      << "usage:\n"
      << "  actg_cli generate <tasks> <pes> <forks> <category 1|2> "
         "<seed> <prefix>\n"
      << "  actg_cli schedule <ctg.txt> <platform.txt> "
         "[ref1|ref2|--policy <" +
             policies + ">]\n"
      << "  actg_cli simulate <ctg.txt> <platform.txt> <instances> "
         "<seed> [--faults <plan> [--no-degrade]] "
         "[--reschedule-mode <full|incremental|table>]\n"
      << "common options: --trace <file> (Chrome trace JSON + timeline "
         "CSV)\n";
  return 2;
}

/// Optional flags of the simulate command, stripped from argv before
/// positional parsing (mirroring obs::ParseTracePath).
struct SimulateFlags {
  std::optional<std::string> plan_path;
  bool no_degrade = false;
  adaptive::RescheduleMode reschedule_mode = adaptive::RescheduleMode::kFull;
};

SimulateFlags ParseSimulateFlags(int& argc, char** argv) {
  SimulateFlags flags;
  flags.plan_path = cli::TakeFlag(argc, argv, "--faults");
  flags.no_degrade = cli::TakeSwitch(argc, argv, "--no-degrade");
  if (const auto name = cli::TakeFlag(argc, argv, "--reschedule-mode")) {
    const auto mode = adaptive::ParseRescheduleMode(*name);
    ACTG_CHECK(mode.has_value(),
               "unknown --reschedule-mode '" + *name +
                   "' (expected full, incremental or table)");
    flags.reschedule_mode = *mode;
  }
  return flags;
}

ctg::Ctg LoadCtg(const std::string& path) {
  std::ifstream in(path);
  ACTG_CHECK(in.good(), "cannot open CTG file: " + path);
  return io::ParseCtg(in).value();
}

arch::Platform LoadPlatform(const std::string& path) {
  std::ifstream in(path);
  ACTG_CHECK(in.good(), "cannot open platform file: " + path);
  return io::ParsePlatform(in).value();
}

int CmdGenerate(int argc, char** argv) {
  if (argc != 8) return Usage();
  tgff::RandomCtgParams params;
  params.task_count = std::atoi(argv[2]);
  params.pe_count = std::atoi(argv[3]);
  params.fork_count = std::atoi(argv[4]);
  params.category = std::atoi(argv[5]) == 2 ? tgff::Category::kFlat
                                            : tgff::Category::kForkJoin;
  params.seed = static_cast<std::uint64_t>(std::atoll(argv[6]));
  const std::string prefix = argv[7];

  util::Expected<tgff::RandomCase> generated = tgff::MakeRandomCtg(params);
  if (!generated.ok()) {
    std::cerr << "error: " << generated.error().message() << "\n";
    return 1;
  }
  tgff::RandomCase& rc = generated.value();
  apps::AssignDeadline(rc.graph, rc.platform, 1.3);
  std::ofstream graph_out(prefix + "_ctg.txt");
  io::WriteCtg(graph_out, rc.graph);
  std::ofstream platform_out(prefix + "_platform.txt");
  io::WritePlatform(platform_out, rc.platform);
  std::cout << "wrote " << prefix << "_ctg.txt and " << prefix
            << "_platform.txt (" << rc.graph.task_count() << " tasks, "
            << rc.graph.ForkIds().size() << " forks, deadline "
            << rc.graph.deadline_ms() << " ms)\n";
  return 0;
}

int CmdSchedule(int argc, char** argv) {
  // Accept the algorithm either positionally (ref1/ref2, or a registry
  // policy name for backwards compatibility with the old online|...
  // spelling) or as --policy <name>.
  std::string algorithm = "online";
  if (argc == 6 && std::string(argv[4]) == "--policy") {
    algorithm = argv[5];
  } else if (argc == 5) {
    algorithm = argv[4];
  } else if (argc != 4) {
    return Usage();
  }
  const ctg::Ctg graph = LoadCtg(argv[2]);
  const arch::Platform platform = LoadPlatform(argv[3]);
  const ctg::ActivationAnalysis analysis(graph);
  const auto probs = apps::UniformProbabilities(graph);

  sched::Schedule schedule = [&] {
    if (algorithm == "ref1") {
      return dvfs::RunReference1(graph, analysis, platform, probs);
    }
    if (algorithm == "ref2") {
      return dvfs::RunReference2(graph, analysis, platform, probs);
    }
    // Everything else resolves through the policy registry (GetPolicy
    // reports the registered names on an unknown one).
    dvfs::GetPolicy(algorithm);
    return dvfs::RunWithPolicy(algorithm, graph, analysis, platform,
                               probs);
  }();
  schedule.Validate();

  sched::WriteGantt(std::cout, schedule);
  std::cout << "\nalgorithm:      " << algorithm
            << "\nworst makespan: " << sim::MaxScenarioMakespan(schedule)
            << " ms over all scenarios\n\n";
  sim::WriteReport(std::cout, sim::BuildReport(schedule, probs));
  return 0;
}

int CmdSimulate(int argc, char** argv, const SimulateFlags& flags) {
  if (argc != 6) return Usage();
  const ctg::Ctg graph = LoadCtg(argv[2]);
  const arch::Platform platform = LoadPlatform(argv[3]);
  const auto instances = static_cast<std::size_t>(std::atoll(argv[4]));
  const auto seed = static_cast<std::uint64_t>(std::atoll(argv[5]));
  const ctg::ActivationAnalysis analysis(graph);

  // Equal-average fluctuating vectors (the Tables 4/5 workload).
  const trace::BranchTrace vectors =
      bench::MakeFluctuatingVectors(graph, instances, seed);
  const auto profile = vectors.ProfiledProbabilities(graph);

  const sched::Schedule online =
      dvfs::RunOnlineAlgorithm(graph, analysis, platform, profile);

  if (!flags.plan_path.has_value()) {
    // The fault-free path: unchanged output, byte for byte.
    const sim::RunSummary base = sim::RunTrace(online, vectors);
    util::TablePrinter table({"configuration", "total energy (mJ)",
                              "avg (mJ)", "re-schedules", "misses"});
    table.BeginRow()
        .Cell("online (static profile)")
        .Cell(base.total_energy_mj, 1)
        .Cell(base.AverageEnergy(), 3)
        .Cell(0)
        .Cell(base.deadline_misses);
    bench::ExperimentSpec spec(graph, analysis, platform);
    spec.WithProfile(profile).WithWindow(20).WithRescheduleMode(
        flags.reschedule_mode);
    for (double threshold : {0.5, 0.1}) {
      bench::AdaptiveHarness harness =
          spec.WithThreshold(threshold).BuildAdaptive();
      const sim::RunSummary run = harness.Run(vectors);
      table.BeginRow()
          .Cell("adaptive T=" + util::TablePrinter::Format(threshold, 1))
          .Cell(run.total_energy_mj, 1)
          .Cell(run.AverageEnergy(), 3)
          .Cell(harness.reschedule_count())
          .Cell(run.deadline_misses);
    }
    table.Print(std::cout);
    return 0;
  }

  // Fault-injected path: same protocol, plus the injector's effects and
  // the degradation ladder (unless --no-degrade ablates it).
  std::ifstream plan_in(*flags.plan_path);
  ACTG_CHECK(plan_in.good(),
             "cannot open fault plan: " + *flags.plan_path);
  util::Expected<faults::FaultPlan> plan = faults::ParseFaultPlan(plan_in);
  if (!plan.ok()) {
    std::cerr << "error: " << plan.error().message() << "\n";
    return 1;
  }
  const faults::Injector injector(plan.value(), graph, platform, seed);

  const sim::RunSummary base =
      sim::RunTraceWithFaults(online, vectors, injector);
  util::TablePrinter table({"configuration", "total energy (mJ)",
                            "avg (mJ)", "re-schedules", "misses",
                            "overruns", "escalations"});
  table.BeginRow()
      .Cell("online (static profile)")
      .Cell(base.total_energy_mj, 1)
      .Cell(base.AverageEnergy(), 3)
      .Cell(0)
      .Cell(base.deadline_misses)
      .Cell(base.overrun_instances)
      .Cell(0);
  bench::ExperimentSpec spec(graph, analysis, platform);
  spec.WithProfile(profile).WithWindow(20).WithRescheduleMode(
      flags.reschedule_mode);
  if (!flags.no_degrade) {
    adaptive::DegradeOptions degrade;
    degrade.enabled = true;
    spec.WithDegrade(degrade);
  }
  for (double threshold : {0.5, 0.1}) {
    bench::AdaptiveHarness harness =
        spec.WithThreshold(threshold).BuildAdaptive();
    const sim::RunSummary run = harness.RunWithFaults(vectors, injector);
    table.BeginRow()
        .Cell("adaptive T=" + util::TablePrinter::Format(threshold, 1))
        .Cell(run.total_energy_mj, 1)
        .Cell(run.AverageEnergy(), 3)
        .Cell(harness.reschedule_count())
        .Cell(run.deadline_misses)
        .Cell(run.overrun_instances)
        .Cell(harness.controller().escalation_count());
  }
  table.Print(std::cout);
  std::cout << "\nfault plan: " << *flags.plan_path << " (intensity "
            << util::TablePrinter::Format(plan.value().intensity, 2)
            << ", ladder "
            << (flags.no_degrade ? "disabled" : "enabled") << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  actg::obs::ScopedTracing tracing(argc, argv);
  const SimulateFlags simulate_flags = ParseSimulateFlags(argc, argv);
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  try {
    if (command == "generate") return CmdGenerate(argc, argv);
    if (command == "schedule") return CmdSchedule(argc, argv);
    if (command == "simulate")
      return CmdSimulate(argc, argv, simulate_flags);
  } catch (const actg::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return Usage();
}
