/// \file cruise_control.cpp
/// Domain example: the vehicle cruise-controller CTG (32 tasks, two
/// branch forks, 5 ECUs — paper Section IV / Table 3) driven over three
/// synthetic road profiles. Shows per-scenario energy, the effect of the
/// deadline on achievable savings, and the adaptive controller reacting
/// to road-condition regime changes.
///
///   ./cruise_control [instances-per-sequence]

#include <cstdlib>
#include <iostream>

#include "adaptive/controller.h"
#include "apps/common.h"
#include "apps/cruise.h"
#include "ctg/activation.h"
#include "dvfs/policy.h"
#include "sched/dls.h"
#include "sim/energy.h"
#include "sim/executor.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace actg;

  const std::size_t instances =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 1000;

  const apps::CruiseModel model = apps::MakeCruiseModel();
  const ctg::ActivationAnalysis analysis(model.graph);
  const auto name = [&](TaskId t) { return model.graph.TaskName(t); };

  std::cout << "Cruise controller: " << model.graph.task_count()
            << " tasks on " << model.platform.pe_count()
            << " ECUs, deadline " << model.graph.deadline_ms()
            << " ms (2x the optimum schedule length)\n\n";

  // The three execution scenarios and their energies under a nominal
  // uniform-probability schedule.
  const auto uniform = apps::UniformProbabilities(model.graph);
  sched::Schedule nominal =
      sched::RunDls(model.graph, analysis, model.platform, uniform);
  dvfs::ApplyPolicy("online", nominal, uniform);
  std::cout << "Scenario energies (stretched schedule, uniform profile):\n";
  for (const ctg::Minterm& scenario :
       analysis.EnumerateScenarioAssignments()) {
    std::cout << "  " << scenario.ToString(name) << ": "
              << sim::ScenarioEnergy(nominal, scenario) << " mJ\n";
  }
  std::cout << "(the accel/decel minterms are nearly equal in energy — "
               "the property the paper cites for the modest cruise "
               "savings)\n\n";

  // Run the three road sequences, non-adaptive vs adaptive.
  const trace::BranchTrace training =
      apps::GenerateRoadTrace(model, 1, instances, 11);
  const ctg::BranchProbabilities profile =
      training.ProfiledProbabilities(model.graph);

  util::TablePrinter table({"sequence", "road profile", "non-adaptive",
                            "adaptive T=0.1", "calls", "saving"});
  const char* roads[3] = {"straight + hill pair", "bumpy, overrides",
                          "rolling steep hills"};
  for (int sequence = 1; sequence <= 3; ++sequence) {
    const trace::BranchTrace vectors = apps::GenerateRoadTrace(
        model, sequence, instances, 100 + sequence);
    sched::Schedule online =
        sched::RunDls(model.graph, analysis, model.platform, profile);
    dvfs::ApplyPolicy("online", online, profile);
    const double online_energy =
        sim::RunTrace(online, vectors).total_energy_mj;

    adaptive::AdaptiveOptions options;
    options.window_length = 20;
    options.threshold = 0.1;
    adaptive::AdaptiveController controller(model.graph, analysis,
                                            model.platform, profile,
                                            options);
    const sim::RunSummary run = adaptive::RunAdaptive(controller, vectors);
    table.BeginRow()
        .Cell(sequence)
        .Cell(roads[sequence - 1])
        .Cell(online_energy, 0)
        .Cell(run.total_energy_mj, 0)
        .Cell(controller.reschedule_count())
        .Cell(util::TablePrinter::Format(
                  100.0 * (1.0 - run.total_energy_mj / online_energy),
                  1) +
              "%");
  }
  table.Print(std::cout);

  std::cout << "\nSavings stay in the single digits because the CTG has "
               "only three minterms and a generous deadline (paper "
               "Table 3 reports ~5%).\n";
  return 0;
}
