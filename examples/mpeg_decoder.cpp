/// \file mpeg_decoder.cpp
/// Domain example: adaptive scheduling of the MPEG macroblock-decoder
/// CTG (40 tasks, 9 branch forks, 3 PEs — paper Fig. 3). Decodes a
/// synthetic movie and shows the adaptive controller re-scheduling as
/// the stream's branch statistics drift.
///
///   ./mpeg_decoder [movie-index 0..7] [macroblocks]

#include <cstdlib>
#include <iostream>

#include "adaptive/controller.h"
#include "apps/mpeg.h"
#include "ctg/activation.h"
#include "dvfs/policy.h"
#include "sched/dls.h"
#include "sim/executor.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace actg;

  const int movie_index =
      argc > 1 ? std::atoi(argv[1]) : 5;  // default: Shuttle
  const std::size_t macroblocks =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 2000;

  const apps::MpegModel model = apps::MakeMpegModel();
  const ctg::ActivationAnalysis analysis(model.graph);
  const auto movies = apps::MpegMovieProfiles();
  if (movie_index < 0 ||
      movie_index >= static_cast<int>(movies.size())) {
    std::cerr << "movie index must be 0.." << movies.size() - 1 << "\n";
    return 1;
  }
  const apps::MovieProfile& movie =
      movies[static_cast<std::size_t>(movie_index)];

  std::cout << "Decoding " << macroblocks << " macroblocks of '"
            << movie.name << "' on " << model.platform.pe_count()
            << " PEs (deadline " << model.graph.deadline_ms()
            << " ms per macroblock)\n\n";

  const trace::BranchTrace full =
      apps::GenerateMovieTrace(model, movie, macroblocks);
  const std::size_t half = macroblocks / 2;
  const trace::BranchTrace training = full.Slice(0, half);
  const trace::BranchTrace testing = full.Slice(half, macroblocks);

  // Profile the training half, like the paper's protocol.
  const ctg::BranchProbabilities profile =
      training.ProfiledProbabilities(model.graph);
  std::cout << "Training profile: P(skipped) = "
            << 1.0 - profile.Outcome(model.fork_skipped, 0)
            << ", P(intra | decoded) = "
            << profile.Outcome(model.fork_type, 0) << "\n\n";

  // Non-adaptive decoding of the test half.
  sched::Schedule online =
      sched::RunDls(model.graph, analysis, model.platform, profile);
  dvfs::ApplyPolicy("online", online, profile);
  const sim::RunSummary non_adaptive = sim::RunTrace(online, testing);

  // Adaptive decoding with both of the paper's thresholds.
  util::TablePrinter table({"configuration", "avg energy (mJ/MB)",
                            "re-schedules", "deadline misses"});
  table.BeginRow()
      .Cell("non-adaptive (trained profile)")
      .Cell(non_adaptive.AverageEnergy(), 3)
      .Cell(0)
      .Cell(non_adaptive.deadline_misses);
  for (double threshold : {0.5, 0.1}) {
    adaptive::AdaptiveOptions options;
    options.window_length = 20;
    options.threshold = threshold;
    adaptive::AdaptiveController controller(model.graph, analysis,
                                            model.platform, profile,
                                            options);
    const sim::RunSummary run = adaptive::RunAdaptive(controller, testing);
    table.BeginRow()
        .Cell("adaptive T=" + util::TablePrinter::Format(threshold, 1))
        .Cell(run.AverageEnergy(), 3)
        .Cell(controller.reschedule_count())
        .Cell(run.deadline_misses);
  }
  table.Print(std::cout);

  std::cout << "\nLower thresholds follow the stream statistics more "
               "closely at the cost of more scheduler invocations "
               "(paper Fig. 5 / Table 2).\n";
  return 0;
}
