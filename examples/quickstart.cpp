/// \file quickstart.cpp
/// End-to-end tour of the library on the paper's Figure 1 example CTG:
/// build the graph, analyze activation conditions, schedule with the
/// modified DLS, stretch with the online DVFS heuristic, and execute a
/// few instances.
///
///   ./quickstart

#include <iostream>

#include "apps/fig1_example.h"
#include "ctg/activation.h"
#include "ctg/dot.h"
#include "dvfs/policy.h"
#include "sched/dls.h"
#include "sim/energy.h"
#include "sim/executor.h"
#include "util/table.h"

int main() {
  using namespace actg;

  // 1. The application model: the paper's Figure 1 CTG (8 tasks, two
  //    branch forks a and b, an or-node τ8) on a 2-PE platform.
  apps::Fig1Example example = apps::MakeFig1Example();
  const ctg::Ctg& graph = example.graph;

  std::cout << "CTG: " << graph.task_count() << " tasks, "
            << graph.edge_count() << " edges, "
            << graph.ForkIds().size() << " branch forks, deadline "
            << graph.deadline_ms() << " ms\n\n";

  // 2. Activation analysis: X(τ), Γ(τ), mutual exclusion, scenarios.
  const ctg::ActivationAnalysis analysis(graph);
  const auto name = [&](TaskId t) { return graph.TaskName(t); };
  std::cout << "Activation conditions X(tau):\n";
  for (TaskId t : graph.TaskIds()) {
    std::cout << "  " << graph.TaskName(t) << ": "
              << analysis.ActivationGuard(t).ToString(name)
              << "  (P = "
              << analysis.ActivationProbability(t, example.probs)
              << ")\n";
  }
  std::cout << "tau4 and tau5 mutually exclusive: "
            << (analysis.MutuallyExclusive(example.tau(4), example.tau(5))
                    ? "yes"
                    : "no")
            << "\n\n";

  // 3. Scheduling: modified dynamic-level scheduling (probability-
  //    weighted static levels, mutual-exclusion-aware PE sharing).
  sched::Schedule schedule = sched::RunDls(graph, analysis,
                                           example.platform, example.probs);
  std::cout << "Nominal schedule: makespan " << schedule.Makespan()
            << " ms, expected energy "
            << sim::ExpectedEnergy(schedule, example.probs) << " mJ\n";

  // 4. DVFS: the paper's online task stretching heuristic.
  const dvfs::StretchStats stats =
      dvfs::ApplyPolicy("online", schedule, example.probs);
  std::cout << "After stretching (" << stats.path_count
            << " paths analyzed): worst path delay "
            << stats.max_path_delay_ms << " ms vs deadline "
            << graph.deadline_ms() << " ms, expected energy "
            << sim::ExpectedEnergy(schedule, example.probs) << " mJ\n\n";

  util::TablePrinter table({"task", "PE", "start", "finish", "speed"});
  for (TaskId t : graph.TaskIds()) {
    const auto& p = schedule.placement(t);
    table.BeginRow()
        .Cell(graph.TaskName(t))
        .Cell(example.platform.pe(p.pe).name)
        .Cell(p.start_ms, 2)
        .Cell(p.finish_ms, 2)
        .Cell(p.speed_ratio, 2);
  }
  table.Print(std::cout);

  // 5. Execute concrete instances: each branch decision vector activates
  //    a different task subset.
  std::cout << "\nPer-scenario execution:\n";
  for (const ctg::Scenario& scenario :
       analysis.EnumerateScenarios(example.probs)) {
    const auto assignment =
        sim::AssignmentFromScenario(graph, scenario.assignment);
    const sim::InstanceResult r =
        sim::ExecuteInstance(schedule, assignment);
    std::cout << "  scenario " << scenario.assignment.ToString(name)
              << " (P = " << scenario.probability << "): "
              << r.active_tasks << " tasks, " << r.energy_mj << " mJ, "
              << r.makespan_ms << " ms, deadline "
              << (r.deadline_met ? "met" : "MISSED") << "\n";
  }

  std::cout << "\nGraphviz of the CTG (pipe into `dot -Tpng`):\n\n";
  ctg::WriteDot(std::cout, graph);
  return 0;
}
