/// \file export_import.cpp
/// Shows the tooling side of the library: save a generated CTG and its
/// platform to the text format, reload them, schedule, and render the
/// schedule as a text Gantt chart — including how mutually exclusive
/// branch tasks share one PE's time window.
///
///   ./export_import [out_prefix]

#include <fstream>
#include <iostream>
#include <sstream>

#include "apps/common.h"
#include "ctg/activation.h"
#include "dvfs/policy.h"
#include "io/text_format.h"
#include "sched/dls.h"
#include "sched/gantt.h"
#include "sim/energy.h"
#include "tgff/random_ctg.h"

int main(int argc, char** argv) {
  using namespace actg;
  const std::string prefix = argc > 1 ? argv[1] : "exported";

  // Generate a case and persist it.
  tgff::RandomCtgParams params;
  params.task_count = 16;
  params.fork_count = 2;
  params.pe_count = 2;
  params.seed = 77;
  tgff::RandomCase rc = tgff::MakeRandomCtg(params).value();
  apps::AssignDeadline(rc.graph, rc.platform, 1.5);

  const std::string graph_file = prefix + "_ctg.txt";
  const std::string platform_file = prefix + "_platform.txt";
  {
    std::ofstream graph_out(graph_file);
    io::WriteCtg(graph_out, rc.graph);
    std::ofstream platform_out(platform_file);
    io::WritePlatform(platform_out, rc.platform);
  }
  std::cout << "Wrote " << graph_file << " and " << platform_file
            << "\n";

  // Reload and run the full pipeline on the reloaded objects.
  std::ifstream graph_in(graph_file);
  const ctg::Ctg graph = io::ParseCtg(graph_in).value();
  std::ifstream platform_in(platform_file);
  const arch::Platform platform = io::ParsePlatform(platform_in).value();

  const ctg::ActivationAnalysis analysis(graph);
  const auto probs = apps::UniformProbabilities(graph);
  sched::Schedule schedule = sched::RunDls(graph, analysis, platform, probs);
  dvfs::ApplyPolicy("online", schedule, probs);
  schedule.Validate();

  std::cout << "Reloaded pipeline: " << graph.task_count() << " tasks, "
            << "makespan " << schedule.Makespan() << " ms (deadline "
            << graph.deadline_ms() << " ms), expected energy "
            << sim::ExpectedEnergy(schedule, probs) << " mJ\n\n";
  sched::WriteGantt(std::cout, schedule);
  std::cout << "\nRows sharing a PE prefix hold mutually exclusive "
               "tasks that occupy the same window (paper Section "
               "III.A).\n";
  return 0;
}
