/// \file bench_fig4.cpp
/// Reproduces paper Figure 4: the branch-b1 selection sequence over 1000
/// decoded macroblocks, its probability within a 50-iteration window,
/// and the threshold-filtered probability (T = 0.1) that the adaptive
/// framework acts on. The three series are written to fig4_series.csv
/// for plotting and summarized on stdout.

#include <cmath>
#include <fstream>
#include <iostream>
#include <string>

#include "obs/setup.h"
#include "apps/mpeg.h"
#include "ctg/activation.h"
#include "profiling/window.h"
#include "runtime/pool.h"
#include "util/atomic_file.h"
#include "util/csv.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace actg;

  obs::ScopedTracing tracing(argc, argv);
  // Accepts --jobs for uniformity with the other bench targets, but the
  // sliding-window filter below is a stateful sequential recurrence
  // (filtered[i] depends on filtered[i-1]) and cannot be parallelized.
  const runtime::Pool pool(runtime::ParseJobs(argc, argv));
  (void)pool;

  util::PrintBanner(std::cout,
                    "Figure 4 - MPEG branch selection, windowed and "
                    "filtered probability (branch b, 1000 macroblocks)");

  const apps::MpegModel model = apps::MakeMpegModel();
  const ctg::ActivationAnalysis analysis(model.graph);
  const auto movies = apps::MpegMovieProfiles();
  const trace::BranchTrace trace =
      apps::GenerateMovieTrace(model, movies[5] /* Shuttle: volatile */,
                               1000);

  constexpr std::size_t kWindow = 50;   // paper: window of 50 iterations
  constexpr double kThreshold = 0.1;    // paper: threshold 0.1
  profiling::SlidingWindowProfiler profiler(model.graph, kWindow);

  const std::string csv_path = util::OutputPath("fig4_series.csv");
  util::AtomicFile csv_file(csv_path);
  util::CsvWriter csv(csv_file.os());
  csv.WriteRow(std::vector<std::string>{"instance", "selection",
                                        "windowed_prob",
                                        "filtered_prob"});

  double filtered = 0.5;  // value in use before the first update
  std::size_t updates = 0;
  util::RunningStats window_stats;
  util::RunningStats tracking_error;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const int selection = trace.At(i).Get(model.fork_type) >= 0 &&
                                  analysis.IsActive(model.fork_type,
                                                    trace.At(i))
                              ? (trace.At(i).Get(model.fork_type) == 0
                                     ? 1
                                     : 0)
                              : 0;
    if (analysis.IsActive(model.fork_type, trace.At(i))) {
      profiler.Observe(model.fork_type, trace.At(i).Get(model.fork_type));
    }
    double windowed = filtered;
    if (profiler.Count(model.fork_type) > 0) {
      windowed = profiler.WindowedProbability(model.fork_type, 0);
    }
    if (profiler.Full(model.fork_type) &&
        std::abs(windowed - filtered) > kThreshold) {
      filtered = windowed;  // paper: "the branch probability is updated
      ++updates;            // with this new value"
    }
    window_stats.Add(windowed);
    tracking_error.Add(std::abs(windowed - filtered));
    csv.WriteRow(std::vector<double>{static_cast<double>(i),
                                     static_cast<double>(selection),
                                     windowed, filtered},
                 4);
  }

  util::TablePrinter table({"metric", "value"});
  table.BeginRow().Cell("instances").Cell(trace.size());
  table.BeginRow().Cell("window length").Cell(kWindow);
  table.BeginRow().Cell("threshold").Cell(kThreshold, 1);
  table.BeginRow().Cell("filtered-prob updates").Cell(updates);
  table.BeginRow()
      .Cell("windowed prob mean")
      .Cell(window_stats.mean(), 3);
  table.BeginRow()
      .Cell("windowed prob range (fluctuation)")
      .Cell(window_stats.max() - window_stats.min(), 3);
  table.BeginRow()
      .Cell("mean |windowed - filtered|")
      .Cell(tracking_error.mean(), 4);
  table.Print(std::cout);

  csv_file.Commit().ThrowIfError();
  std::cout << "\nSeries written to " << csv_path << " (instance, raw "
               "selection, windowed probability, filtered probability).\n"
            << "Expected shape: raw selections look random; the windowed "
               "probability drifts slowly with local fluctuation; the "
               "filtered series is a staircase that follows it whenever "
               "the difference exceeds the 0.1 threshold (a low-pass "
               "filter, per the paper).\n";
  return 0;
}
