/// \file bench_table1.cpp
/// Reproduces paper Table 1: normalized expected energy of Reference
/// Algorithm 1 [10], Reference Algorithm 2 [17] and the online algorithm
/// on five random CTGs, with the online energy normalized to 100. Also
/// reports the per-CTG stretching runtimes backing the paper's claim
/// that the heuristic is orders of magnitude faster than the NLP
/// (paper: ~0.6 ms vs ~70 s, about 120000x).

#include <chrono>
#include <iostream>

#include "ctg/activation.h"
#include "dvfs/algorithms.h"
#include "experiments.h"
#include "obs/setup.h"
#include "runtime/pool.h"
#include "sim/energy.h"
#include "sim/report.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using Clock = std::chrono::steady_clock;

double Ms(Clock::time_point begin, Clock::time_point end) {
  return std::chrono::duration<double, std::milli>(end - begin).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace actg;

  obs::ScopedTracing tracing(argc, argv);
  runtime::Pool pool(runtime::ParseJobs(argc, argv));

  util::PrintBanner(std::cout,
                    "Table 1 - Energy consumption of online algorithm "
                    "(normalized, online = 100)");

  util::TablePrinter table({"CTG", "a/b/c", "Reference Algorithm 1",
                            "Reference Algorithm 2", "Online Algorithm",
                            "online ms", "NLP ms"});

  // Energies are deterministic for any worker count; the two wall-clock
  // columns are measurements and vary run to run regardless of jobs.
  struct Row {
    double e_online = 0.0;
    double e_ref1 = 0.0;
    double e_ref2 = 0.0;
    double online_ms = 0.0;
    double nlp_ms = 0.0;
  };
  const std::vector<bench::TestCase> cases = bench::MakeTable1Cases();
  const std::vector<Row> rows = runtime::ParallelMap(
      pool, cases.size(), [&](std::size_t i) {
        const bench::TestCase& test = cases[i];
        const int index = static_cast<int>(i) + 1;
        const ctg::Ctg& graph = test.rc.graph;
        const arch::Platform& platform = test.rc.platform;
        const ctg::ActivationAnalysis analysis(graph);

        // "The branching probabilities for all branching nodes were
        // randomly generated."
        util::Random rng(99 + static_cast<std::uint64_t>(index));
        ctg::BranchProbabilities probs(graph.task_count());
        for (TaskId fork : graph.ForkIds()) {
          const double p = rng.Uniform(0.1, 0.9);
          probs.Set(fork, {p, 1.0 - p});
        }

        const auto t0 = Clock::now();
        const sched::Schedule online =
            dvfs::RunOnlineAlgorithm(graph, analysis, platform, probs);
        const auto t1 = Clock::now();
        const sched::Schedule ref2 =
            dvfs::RunReference2(graph, analysis, platform, probs);
        const auto t2 = Clock::now();
        const sched::Schedule ref1 =
            dvfs::RunReference1(graph, analysis, platform, probs);

        Row row;
        row.e_online = sim::ExpectedEnergy(online, probs);
        row.e_ref1 = sim::ExpectedEnergy(ref1, probs);
        row.e_ref2 = sim::ExpectedEnergy(ref2, probs);
        row.online_ms = Ms(t0, t1);
        row.nlp_ms = Ms(t1, t2);
        return row;
      });

  double speedup_total = 0.0;
  int index = 0;
  for (const Row& row : rows) {
    const bench::TestCase& test = cases[static_cast<std::size_t>(index)];
    ++index;
    speedup_total += row.nlp_ms / std::max(row.online_ms, 1e-6);

    table.BeginRow()
        .Cell(index)
        .Cell(test.label)
        .Cell(100.0 * row.e_ref1 / row.e_online, 0)
        .Cell(100.0 * row.e_ref2 / row.e_online, 0)
        .Cell(100.0, 0)
        .Cell(row.online_ms, 3)
        .Cell(row.nlp_ms, 1);
  }
  table.Print(std::cout);

  std::cout << "\nAverage NLP/heuristic runtime ratio: "
            << util::TablePrinter::Format(speedup_total / 5.0, 0)
            << "x (paper: ~120000x between 0.6 ms heuristic and a 70 s "
               "NLP solver; our convex solver is far faster than a "
               "general NLP package, so the ratio is smaller but the "
               "ordering holds)\n";
  std::cout << "Paper reference values: Ref1 = 195/145/130/139/290, "
               "Ref2 = 87/93/95/91/97.\n";

  sim::WriteMetricsReport(std::cerr, runtime::Metrics::Global());
  return 0;
}
