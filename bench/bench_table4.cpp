/// \file bench_table4.cpp
/// Reproduces paper Table 4: energy of the non-adaptive online algorithm
/// profiled with a *lowest-energy-minterm bias* versus the adaptive
/// algorithm (thresholds 0.5 and 0.1, window 20) on ten random CTGs —
/// graphs 1-5 Category 1 (fork-join, nested branches), graphs 6-10
/// Category 2 — driven by equal-average fluctuating test vectors.

#include <iostream>

#include "ctg/activation.h"
#include "experiments.h"
#include "obs/setup.h"
#include "runtime/pool.h"
#include "sim/report.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace actg;

  obs::ScopedTracing tracing(argc, argv);
  runtime::Pool pool(runtime::ParseJobs(argc, argv));

  util::PrintBanner(std::cout,
                    "Table 4 - Energy savings with online algorithm "
                    "profiled for lowest energy minterm bias vector set");

  util::TablePrinter table({"CTG", "a/b/c", "cat", "Online",
                            "T=0.5 Energy", "T=0.5 calls",
                            "T=0.1 Energy", "T=0.1 calls",
                            "save 0.5", "save 0.1"});
  double online_total = 0.0, t05_total = 0.0, t01_total = 0.0;
  double cat1_online = 0.0, cat1_adaptive = 0.0;
  double cat2_online = 0.0, cat2_adaptive = 0.0;

  // Each case is an independent Monte-Carlo run keyed by its index
  // (seeds derive from the index alone), so the rows are computed in
  // parallel and printed serially in index order — stdout is identical
  // for any worker count.
  const std::vector<bench::TestCase> cases = bench::MakeTable45Cases();
  const auto rows = runtime::ParallelMap(
      pool, cases.size(), [&](std::size_t i) {
        const bench::TestCase& test = cases[i];
        const int index = static_cast<int>(i) + 1;
        const ctg::ActivationAnalysis analysis(test.rc.graph);
        const trace::BranchTrace vectors = bench::MakeFluctuatingVectors(
            test.rc.graph, 1000, 777 + static_cast<std::uint64_t>(index));
        const ctg::BranchProbabilities profile = bench::BiasedProfile(
            test.rc.graph, analysis, test.rc.platform, /*lowest=*/true);
        bench::ExperimentSpec spec(test.rc.graph, analysis,
                                   test.rc.platform);
        spec.WithProfile(profile).WithWindow(20).WithScheduleCache()
            .WithPool(&pool);
        return bench::CompareAdaptive(spec, vectors);
      });

  int index = 0;
  for (const bench::AdaptiveComparison& cmp : rows) {
    const bench::TestCase& test = cases[static_cast<std::size_t>(index)];
    ++index;

    online_total += cmp.online_energy;
    t05_total += cmp.adaptive_energy_t05;
    t01_total += cmp.adaptive_energy_t01;
    if (index <= 5) {
      cat1_online += cmp.online_energy;
      cat1_adaptive += cmp.adaptive_energy_t01;
    } else {
      cat2_online += cmp.online_energy;
      cat2_adaptive += cmp.adaptive_energy_t01;
    }

    table.BeginRow()
        .Cell(index)
        .Cell(test.label)
        .Cell(index <= 5 ? "1" : "2")
        .Cell(cmp.online_energy / 1000.0, 0)
        .Cell(cmp.adaptive_energy_t05 / 1000.0, 0)
        .Cell(cmp.calls_t05)
        .Cell(cmp.adaptive_energy_t01 / 1000.0, 0)
        .Cell(cmp.calls_t01)
        .Cell(util::TablePrinter::Format(
                  100.0 * (1.0 -
                           cmp.adaptive_energy_t05 / cmp.online_energy),
                  1) +
              "%")
        .Cell(util::TablePrinter::Format(
                  100.0 * (1.0 -
                           cmp.adaptive_energy_t01 / cmp.online_energy),
                  1) +
              "%");
  }
  table.Print(std::cout);

  std::cout << "\nOverall adaptive savings over the misprofiled online "
               "algorithm: "
            << util::TablePrinter::Format(
                   100.0 * (1.0 - t05_total / online_total), 1)
            << "% (T=0.5), "
            << util::TablePrinter::Format(
                   100.0 * (1.0 - t01_total / online_total), 1)
            << "% (T=0.1). Paper: ~22% and ~23%.\n"
            << "Category 1 savings "
            << util::TablePrinter::Format(
                   100.0 * (1.0 - cat1_adaptive / cat1_online), 1)
            << "% vs Category 2 "
            << util::TablePrinter::Format(
                   100.0 * (1.0 - cat2_adaptive / cat2_online), 1)
            << "% at T=0.1 (paper: Category 1 ~8% higher; nested "
               "fork-join graphs benefit more).\n"
            << "Energies are reported per 1000 instances in table "
               "units of 1000 mJ.\n";

  sim::WriteMetricsReport(std::cerr, runtime::Metrics::Global());
  return 0;
}
