/// \file bench_fig6.cpp
/// Reproduces paper Figure 6: energy of the non-adaptive online
/// algorithm with *ideal* profiling information (the exact long-run
/// average branch probabilities of the test vectors) versus the adaptive
/// algorithm at threshold 0.5, over the same ten random CTGs and vector
/// sets as Tables 4/5. Any adaptive advantage here comes purely from
/// tracking the local probability fluctuation that the long-run average
/// hides.

#include <iostream>

#include "ctg/activation.h"
#include "experiments.h"
#include "obs/setup.h"
#include "runtime/pool.h"
#include "sim/executor.h"
#include "sim/report.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace actg;

  obs::ScopedTracing tracing(argc, argv);
  runtime::Pool pool(runtime::ParseJobs(argc, argv));

  util::PrintBanner(std::cout,
                    "Figure 6 - Energy consumption with ideal profiling "
                    "(adaptive threshold 0.5)");

  util::TablePrinter table({"CTG", "a/b/c", "cat", "Non-adaptive (ideal)",
                            "Adaptive T=0.5", "calls", "saving"});
  double online_total = 0.0, adaptive_total = 0.0;
  double cat1_online = 0.0, cat1_adaptive = 0.0;
  double cat2_online = 0.0, cat2_adaptive = 0.0;

  struct Row {
    double online_energy = 0.0;
    double adaptive_energy = 0.0;
    std::size_t calls = 0;
  };
  const std::vector<bench::TestCase> cases = bench::MakeTable45Cases();
  const std::vector<Row> rows = runtime::ParallelMap(
      pool, cases.size(), [&](std::size_t i) {
        const bench::TestCase& test = cases[i];
        const int index = static_cast<int>(i) + 1;
        const ctg::ActivationAnalysis analysis(test.rc.graph);
        const trace::BranchTrace vectors = bench::MakeFluctuatingVectors(
            test.rc.graph, 1000, 777 + static_cast<std::uint64_t>(index));

        // Ideal profiling: the true long-run averages of the very
        // vectors used for evaluation.
        const ctg::BranchProbabilities ideal =
            vectors.ProfiledProbabilities(test.rc.graph);

        bench::ExperimentSpec spec(test.rc.graph, analysis,
                                   test.rc.platform);
        spec.WithProfile(ideal).WithWindow(20).WithThreshold(0.5)
            .WithScheduleCache();
        const sched::Schedule online = spec.BuildOnlineSchedule();

        Row row;
        row.online_energy = sim::RunTrace(online, vectors).total_energy_mj;

        bench::AdaptiveHarness harness = spec.BuildAdaptive();
        const sim::RunSummary run = harness.Run(vectors);
        row.adaptive_energy = run.total_energy_mj;
        row.calls = harness.reschedule_count();
        return row;
      });

  int index = 0;
  for (const Row& row : rows) {
    const bench::TestCase& test = cases[static_cast<std::size_t>(index)];
    ++index;

    online_total += row.online_energy;
    adaptive_total += row.adaptive_energy;
    if (index <= 5) {
      cat1_online += row.online_energy;
      cat1_adaptive += row.adaptive_energy;
    } else {
      cat2_online += row.online_energy;
      cat2_adaptive += row.adaptive_energy;
    }

    table.BeginRow()
        .Cell(index)
        .Cell(test.label)
        .Cell(index <= 5 ? "1" : "2")
        .Cell(row.online_energy / 1000.0, 0)
        .Cell(row.adaptive_energy / 1000.0, 0)
        .Cell(row.calls)
        .Cell(util::TablePrinter::Format(
                  100.0 * (1.0 - row.adaptive_energy / row.online_energy),
                  1) +
              "%");
  }
  table.Print(std::cout);

  std::cout << "\nOverall adaptive savings over ideal-profiled online: "
            << util::TablePrinter::Format(
                   100.0 * (1.0 - adaptive_total / online_total), 1)
            << "% (paper: ~10% overall, ~16% Category 1, ~5% Category "
               "2).\n"
            << "Category 1: "
            << util::TablePrinter::Format(
                   100.0 * (1.0 - cat1_adaptive / cat1_online), 1)
            << "%, Category 2: "
            << util::TablePrinter::Format(
                   100.0 * (1.0 - cat2_adaptive / cat2_online), 1)
            << "%. See EXPERIMENTS.md for why our reconstructed "
               "heuristic shows a smaller ideal-profiling gain than the "
               "paper while preserving the ordering.\n";

  sim::WriteMetricsReport(std::cerr, runtime::Metrics::Global());
  return 0;
}
