/// \file bench_fig5_table2.cpp
/// Reproduces paper Figure 5 and Table 2: average decoding energy of the
/// MPEG CTG under the adaptive algorithm (thresholds 0.5 and 0.1) versus
/// the non-adaptive online algorithm for eight movie clips, plus the
/// number of online scheduling + DVFS invocations per movie.
///
/// Protocol (paper Section IV): 2000 decision vectors per movie; the
/// first 1000 are the training sequence that provides the non-adaptive
/// profile, the second 1000 are the testing sequence; sliding window of
/// size 20.

#include <iostream>

#include "apps/mpeg.h"
#include "ctg/activation.h"
#include "experiments.h"
#include "obs/setup.h"
#include "runtime/pool.h"
#include "sim/executor.h"
#include "sim/report.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace actg;

  obs::ScopedTracing tracing(argc, argv);
  runtime::Pool pool(runtime::ParseJobs(argc, argv));

  const apps::MpegModel model = apps::MakeMpegModel();
  const ctg::ActivationAnalysis analysis(model.graph);

  util::PrintBanner(std::cout,
                    "Figure 5 - MPEG energy consumption with varying "
                    "thresholds (average energy per macroblock, mJ)");

  util::TablePrinter fig5({"Movie", "Online (non-adaptive)",
                           "Adaptive T=0.5", "Adaptive T=0.1",
                           "saving T=0.5", "saving T=0.1"});
  util::TablePrinter table2({"Movie", "T=0.5 calls", "T=0.1 calls"});

  struct Row {
    double online_avg = 0.0;
    double adaptive_energy[2] = {0.0, 0.0};
    std::size_t calls[2] = {0, 0};
  };
  const std::vector<apps::MovieProfile> movies = apps::MpegMovieProfiles();
  const std::vector<Row> rows = runtime::ParallelMap(
      pool, movies.size(), [&](std::size_t i) {
        const apps::MovieProfile& movie = movies[i];
        const trace::BranchTrace full =
            apps::GenerateMovieTrace(model, movie, 2000);
        const trace::BranchTrace training = full.Slice(0, 1000);
        const trace::BranchTrace testing = full.Slice(1000, 2000);

        // Non-adaptive: profile from the training sequence, fixed
        // schedule.
        const ctg::BranchProbabilities profile =
            training.ProfiledProbabilities(model.graph);
        bench::ExperimentSpec spec(model.graph, analysis, model.platform);
        spec.WithProfile(profile).WithWindow(20).WithScheduleCache();
        const sched::Schedule online = spec.BuildOnlineSchedule();

        Row row;
        row.online_avg = sim::RunTrace(online, testing).AverageEnergy();

        // Adaptive: window 20, thresholds 0.5 and 0.1, same initial
        // profile. Scene-change oscillations revisit operating points,
        // so each controller memoizes through a schedule cache.
        const double thresholds[2] = {0.5, 0.1};
        for (int t = 0; t < 2; ++t) {
          bench::AdaptiveHarness harness =
              spec.WithThreshold(thresholds[t]).BuildAdaptive();
          const sim::RunSummary run = harness.Run(testing);
          row.adaptive_energy[t] = run.AverageEnergy();
          row.calls[t] = harness.reschedule_count();
        }
        return row;
      });

  double online_total = 0.0, t05_total = 0.0, t01_total = 0.0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    online_total += row.online_avg;
    t05_total += row.adaptive_energy[0];
    t01_total += row.adaptive_energy[1];

    fig5.BeginRow()
        .Cell(movies[i].name)
        .Cell(row.online_avg, 2)
        .Cell(row.adaptive_energy[0], 2)
        .Cell(row.adaptive_energy[1], 2)
        .Cell(util::TablePrinter::Format(
                  100.0 * (1.0 - row.adaptive_energy[0] /
                                     row.online_avg),
                  1) +
              "%")
        .Cell(util::TablePrinter::Format(
                  100.0 * (1.0 - row.adaptive_energy[1] /
                                     row.online_avg),
                  1) +
              "%");
    table2.BeginRow()
        .Cell(movies[i].name)
        .Cell(row.calls[0])
        .Cell(row.calls[1]);
  }
  fig5.Print(std::cout);

  std::cout << "\nAverage savings of the adaptive algorithm over the "
               "non-adaptive online algorithm: "
            << util::TablePrinter::Format(
                   100.0 * (1.0 - t05_total / online_total), 1)
            << "% (T=0.5), "
            << util::TablePrinter::Format(
                   100.0 * (1.0 - t01_total / online_total), 1)
            << "% (T=0.1). Paper: 21% and 23%.\n";

  util::PrintBanner(std::cout,
                    "Table 2 - Algorithm call count for MPEG movies "
                    "(1000 testing macroblocks each)");
  table2.Print(std::cout);
  std::cout << "\nPaper reference: T=0.5 -> 5..32 calls (average 9); "
               "T=0.1 -> 153..276 calls (average 162).\n";

  sim::WriteMetricsReport(std::cerr, runtime::Metrics::Global());
  return 0;
}
