/// \file bench_ablation.cpp
/// Ablation studies of the design choices DESIGN.md §6 calls out. Not a
/// paper table — these isolate *why* the online algorithm wins:
///   A. probability-weighted vs worst-case static levels (mapping);
///   B. mutual-exclusion-aware vs blind scheduling;
///   C. probability-weighted vs blind slack distribution (same mapping);
///   D. sliding-window length (adaptation quality vs estimator noise);
///   E. adaptation threshold (energy vs re-scheduling overhead);
///   F. continuous vs discrete DVFS levels.
/// Averages over the ten Table-4/5 CTGs.

#include <iostream>
#include <string_view>
#include <vector>

#include "ctg/activation.h"
#include "dvfs/policy.h"
#include "experiments.h"
#include "obs/setup.h"
#include "runtime/pool.h"
#include "sched/dls.h"
#include "sim/energy.h"
#include "sim/executor.h"
#include "sim/report.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace actg;

/// Random per-fork probabilities shared by the structural ablations.
ctg::BranchProbabilities RandomProbs(const ctg::Ctg& graph,
                                     std::uint64_t seed) {
  util::Random rng(seed);
  ctg::BranchProbabilities probs(graph.task_count());
  for (TaskId fork : graph.ForkIds()) {
    const double p = rng.Uniform(0.1, 0.9);
    probs.Set(fork, {p, 1.0 - p});
  }
  return probs;
}

double PipelineEnergy(const bench::TestCase& test,
                      const ctg::ActivationAnalysis& analysis,
                      const ctg::BranchProbabilities& probs,
                      const sched::DlsOptions& dls_options,
                      std::string_view stretch_policy) {
  sched::Schedule s = sched::RunDls(test.rc.graph, analysis,
                                    test.rc.platform, probs, dls_options);
  dvfs::ApplyPolicy(stretch_policy, s, probs);
  return sim::ExpectedEnergy(s, probs);
}

/// Totals of one (window, threshold) sweep over the ten CTGs, used by
/// ablations D and E. The per-CTG runs are independent and go through
/// the pool; each controller memoizes through its own schedule cache.
struct SweepTotals {
  double adaptive_total = 0.0;
  double online_total = 0.0;
  std::size_t calls = 0;
};

SweepTotals AdaptiveSweep(runtime::Pool& pool,
                          const std::vector<bench::TestCase>& cases,
                          std::size_t window, double threshold) {
  struct SweepRow {
    double adaptive = 0.0;
    double online = 0.0;
    std::size_t calls = 0;
  };
  const std::vector<SweepRow> rows = runtime::ParallelMap(
      pool, cases.size(), [&](std::size_t i) {
        const bench::TestCase& test = cases[i];
        const int index = static_cast<int>(i) + 1;
        const ctg::ActivationAnalysis analysis(test.rc.graph);
        const auto vectors = bench::MakeFluctuatingVectors(
            test.rc.graph, 500, 777 + static_cast<std::uint64_t>(index));
        const auto profile = bench::BiasedProfile(
            test.rc.graph, analysis, test.rc.platform, true);
        bench::ExperimentSpec spec(test.rc.graph, analysis,
                                   test.rc.platform);
        spec.WithProfile(profile).WithWindow(window)
            .WithThreshold(threshold).WithScheduleCache();
        const sched::Schedule online = spec.BuildOnlineSchedule();

        SweepRow row;
        row.online = sim::RunTrace(online, vectors).total_energy_mj;

        bench::AdaptiveHarness harness = spec.BuildAdaptive();
        row.adaptive = harness.Run(vectors).total_energy_mj;
        row.calls = harness.reschedule_count();
        return row;
      });

  SweepTotals totals;
  for (const SweepRow& row : rows) {
    totals.adaptive_total += row.adaptive;
    totals.online_total += row.online;
    totals.calls += row.calls;
  }
  return totals;
}

}  // namespace

int main(int argc, char** argv) {
  obs::ScopedTracing tracing(argc, argv);
  runtime::Pool pool(runtime::ParseJobs(argc, argv));

  std::vector<bench::TestCase> cases = bench::MakeTable45Cases();

  // ------------------------------------------------------------------ A-C
  util::PrintBanner(std::cout,
                    "Ablations A-C: scheduling and stretching design "
                    "choices (expected energy, baseline = full online "
                    "algorithm = 100)");
  util::TablePrinter structural(
      {"CTG", "full online", "A worst-case SL", "B mutex-blind",
       "C prob-blind stretch"});
  double totals[4] = {0, 0, 0, 0};

  struct StructuralRow {
    double full = 0.0, a = 0.0, b = 0.0, c = 0.0;
  };
  const std::vector<StructuralRow> structural_rows = runtime::ParallelMap(
      pool, cases.size(), [&](std::size_t i) {
        const bench::TestCase& test = cases[i];
        const int index = static_cast<int>(i) + 1;
        const ctg::ActivationAnalysis analysis(test.rc.graph);
        const auto probs = RandomProbs(
            test.rc.graph, 500 + static_cast<std::uint64_t>(index));

        StructuralRow row;
        sched::DlsOptions base;
        row.full = PipelineEnergy(test, analysis, probs, base, "online");

        sched::DlsOptions worst_sl = base;
        worst_sl.level_policy = sched::LevelPolicy::kWorstCase;
        row.a = PipelineEnergy(test, analysis, probs, worst_sl, "online");

        sched::DlsOptions blind = base;
        blind.mutex_aware = false;
        row.b = PipelineEnergy(test, analysis, probs, blind, "online");

        row.c =
            PipelineEnergy(test, analysis, probs, base, "proportional");
        return row;
      });

  int index = 0;
  for (const StructuralRow& row : structural_rows) {
    ++index;
    totals[0] += row.full;
    totals[1] += row.a;
    totals[2] += row.b;
    totals[3] += row.c;
    structural.BeginRow()
        .Cell(index)
        .Cell(100.0, 0)
        .Cell(100.0 * row.a / row.full, 1)
        .Cell(100.0 * row.b / row.full, 1)
        .Cell(100.0 * row.c / row.full, 1);
  }
  structural.BeginRow()
      .Cell("avg")
      .Cell(100.0, 0)
      .Cell(100.0 * totals[1] / totals[0], 1)
      .Cell(100.0 * totals[2] / totals[0], 1)
      .Cell(100.0 * totals[3] / totals[0], 1);
  structural.Print(std::cout);
  std::cout << "\nA: worst-case static levels (on these ten graphs the "
               "SL policy alone flips no mapping decision - the level "
               "ordering is robust - so Reference 1's Table-1 gap stems "
               "from its *given* naive mapping and blind analysis, not "
               "from the SL weighting); B: mutex-blind scheduling "
               "serializes exclusive tasks and budgets slack for "
               "impossible chains; C: ignoring branch probabilities "
               "during slack distribution. Note C < 100: with accurate "
               "probabilities on these graphs the blind distribution "
               "stretches deeper, which is exactly why it collapses "
               "under *inaccurate* profiles (Tables 4/5) - it has no "
               "notion of which branches are likely.\n";

  // -------------------------------------------------------------------- D
  util::PrintBanner(std::cout,
                    "Ablation D: sliding-window length (threshold 0.1, "
                    "misprofiled start; totals over the ten CTGs)");
  util::TablePrinter window_table(
      {"window", "adaptive energy", "vs online", "calls"});
  for (std::size_t window : {5u, 10u, 20u, 50u, 100u}) {
    const SweepTotals totals =
        AdaptiveSweep(pool, cases, window, /*threshold=*/0.1);
    window_table.BeginRow()
        .Cell(window)
        .Cell(totals.adaptive_total / 1000.0, 0)
        .Cell(util::TablePrinter::Format(
                  100.0 * (1.0 - totals.adaptive_total /
                                     totals.online_total),
                  1) +
              "%")
        .Cell(totals.calls);
  }
  window_table.Print(std::cout);
  std::cout << "\nShort windows react fast but the estimator noise "
               "(stddev ~ sqrt(p(1-p)/L)) triggers spurious calls; long "
               "windows lag the drift.\n";

  // -------------------------------------------------------------------- E
  util::PrintBanner(std::cout,
                    "Ablation E: adaptation threshold (window 20, "
                    "misprofiled start; totals over the ten CTGs)");
  util::TablePrinter threshold_table(
      {"threshold", "adaptive energy", "vs online", "calls"});
  for (double threshold : {0.05, 0.1, 0.25, 0.5, 0.8}) {
    const SweepTotals totals =
        AdaptiveSweep(pool, cases, /*window=*/20, threshold);
    threshold_table.BeginRow()
        .Cell(threshold, 2)
        .Cell(totals.adaptive_total / 1000.0, 0)
        .Cell(util::TablePrinter::Format(
                  100.0 * (1.0 - totals.adaptive_total /
                                     totals.online_total),
                  1) +
              "%")
        .Cell(totals.calls);
  }
  threshold_table.Print(std::cout);
  std::cout << "\nThe paper's observation holds: a mid threshold keeps "
               "almost all of the energy savings at a fraction of the "
               "re-scheduling overhead.\n";

  // -------------------------------------------------------------------- F
  util::PrintBanner(std::cout,
                    "Ablation F: continuous vs discrete DVFS levels "
                    "(online algorithm, expected energy normalized to "
                    "continuous = 100)");
  util::TablePrinter level_table(
      {"CTG", "continuous", "levels {.25,.5,.75,1}", "levels {.5,1}"});
  double level_totals[3] = {0, 0, 0};

  struct LevelRow {
    double energies[3] = {0.0, 0.0, 0.0};
  };
  const std::vector<LevelRow> level_rows = runtime::ParallelMap(
      pool, cases.size(), [&](std::size_t i) {
        const bench::TestCase& test = cases[i];
        const int index = static_cast<int>(i) + 1;
        const ctg::ActivationAnalysis analysis(test.rc.graph);
        const auto probs = RandomProbs(
            test.rc.graph, 500 + static_cast<std::uint64_t>(index));
        LevelRow row;
        for (int mode = 0; mode < 3; ++mode) {
          arch::PlatformBuilder builder(test.rc.graph.task_count(),
                                        test.rc.platform.pe_count());
          for (TaskId task : test.rc.graph.TaskIds()) {
            for (PeId pe : test.rc.platform.PeIds()) {
              builder.SetTaskCost(task, pe,
                                  test.rc.platform.Wcet(task, pe),
                                  test.rc.platform.Energy(task, pe));
            }
          }
          for (PeId pe : test.rc.platform.PeIds()) {
            if (mode == 0) {
              builder.SetMinSpeedRatio(
                  pe, test.rc.platform.pe(pe).min_speed_ratio);
            } else if (mode == 1) {
              builder.SetSpeedLevels(pe, {0.25, 0.5, 0.75, 1.0});
            } else {
              builder.SetSpeedLevels(pe, {0.5, 1.0});
            }
          }
          const arch::Platform platform = std::move(builder).Build();
          sched::Schedule s = sched::RunDls(test.rc.graph, analysis,
                                            platform, probs);
          dvfs::ApplyPolicy("online", s, probs);
          row.energies[mode] = sim::ExpectedEnergy(s, probs);
        }
        return row;
      });

  index = 0;
  for (const LevelRow& row : level_rows) {
    ++index;
    for (int mode = 0; mode < 3; ++mode) {
      level_totals[mode] += row.energies[mode];
    }
    level_table.BeginRow()
        .Cell(index)
        .Cell(100.0, 0)
        .Cell(100.0 * row.energies[1] / row.energies[0], 1)
        .Cell(100.0 * row.energies[2] / row.energies[0], 1);
  }
  level_table.BeginRow()
      .Cell("avg")
      .Cell(100.0, 0)
      .Cell(100.0 * level_totals[1] / level_totals[0], 1)
      .Cell(100.0 * level_totals[2] / level_totals[0], 1);
  level_table.Print(std::cout);
  std::cout << "\nDiscrete levels round every speed up to the next "
               "available step; four levels already recover most of the "
               "continuous-DVFS savings.\n";

  sim::WriteMetricsReport(std::cerr, runtime::Metrics::Global());
  return 0;
}
