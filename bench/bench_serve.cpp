/// \file bench_serve.cpp
/// Fleet throughput / queue latency benchmark of the serve daemon.
///
/// Replays the deterministic synthetic fleet (serve::SyntheticFleet) at
/// the requested --jobs concurrency and emits BENCH_serve.json: wall
/// time, per-SLA-class slice-latency percentiles, deterministic
/// deadline-miss counts and the schedule-cache counters. CI gates the
/// latency-critical (SLA0) p99 against the committed baseline
/// (bench/baselines/BENCH_serve.json) with generous noise headroom; the
/// deterministic fields double as a cheap fleet regression check.
///
///   bench_serve [--jobs N] [--tenants T] [--instances I] [--seed S]
///               [--out <file>]        (default BENCH_serve.json)

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>

#include "cli_common.h"
#include "runtime/pool.h"
#include "serve/request.h"
#include "serve/server.h"
#include "util/atomic_file.h"
#include "util/error.h"

namespace {

using namespace actg;

void WriteSla(std::ostream& os, const serve::Server& server,
              const serve::FleetReport& report, serve::SlaClass sla) {
  const serve::LatencyStats latency = server.Latency(sla);
  const serve::SlaReport& agg =
      report.sla[static_cast<std::size_t>(sla)];
  os << "    {\"class\": \"" << serve::SlaName(sla) << "\", "
     << "\"tenants\": " << agg.tenants << ", "
     << "\"shed_tenants\": " << agg.shed_tenants << ", "
     << "\"instances\": " << agg.instances << ", "
     << "\"deadline_misses\": " << agg.deadline_misses << ", "
     << "\"slices\": " << latency.samples << ", "
     << "\"p50_ms\": " << latency.p50_ms << ", "
     << "\"p99_ms\": " << latency.p99_ms << ", "
     << "\"max_ms\": " << latency.max_ms << ", "
     << "\"budget_overruns\": " << latency.budget_overruns << "}";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::size_t jobs = runtime::ParseJobs(argc, argv);
    const std::size_t tenants = cli::CountFlag(argc, argv, "--tenants", 48);
    const std::size_t instances =
        cli::CountFlag(argc, argv, "--instances", 6);
    const std::size_t seed = cli::CountFlag(argc, argv, "--seed", 7);
    const std::string out_path =
        cli::StringFlag(argc, argv, "--out", "BENCH_serve.json");

    serve::FleetRequest fleet = serve::SyntheticFleet(
        tenants, instances, static_cast<std::uint64_t>(seed));
    // Stress the admission ladder: thresholds low enough that a 48+
    // tenant fleet crosses defer (and, early on, shed) territory.
    fleet.config.defer_depth = tenants * instances / 4;
    fleet.config.shed_depth = tenants * instances / 2;

    serve::ServerOptions options;
    options.jobs = jobs;
    serve::Server server(std::move(fleet), options);

    const auto begin = std::chrono::steady_clock::now();
    const serve::FleetReport& report = server.Run();
    const auto end = std::chrono::steady_clock::now();
    const double wall_ms =
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
            .count() *
        1e-6;

    util::AtomicFile json(out_path);
    ACTG_CHECK(json.ok(), "bench_serve: cannot write " + out_path);
    std::ostream& os = json.os();
    os << "{\n";
    os << "  \"benchmark\": \"serve\",\n";
    os << "  \"tenants\": " << tenants << ",\n";
    os << "  \"instances_per_tenant\": " << instances << ",\n";
    os << "  \"seed\": " << seed << ",\n";
    os << "  \"jobs\": " << jobs << ",\n";
    os << "  \"wall_ms\": " << wall_ms << ",\n";
    os << "  \"rounds\": " << report.rounds << ",\n";
    os << "  \"shed_tenants\": " << report.shed_tenants << ",\n";
    os << "  \"deferred_rounds\": " << report.deferred_rounds << ",\n";
    os << "  \"cache\": {\"hits\": " << server.cache().hits()
       << ", \"misses\": " << server.cache().misses()
       << ", \"evictions\": " << server.cache().evictions() << "},\n";
    os << "  \"sla\": [\n";
    for (std::size_t cls = 0; cls < serve::kSlaClassCount; ++cls) {
      WriteSla(os, server, report,
               static_cast<serve::SlaClass>(cls));
      os << (cls + 1 < serve::kSlaClassCount ? ",\n" : "\n");
    }
    os << "  ]\n";
    os << "}\n";
    json.Commit().ThrowIfError();

    // Human summary (wall-clock, intentionally not diffable).
    std::cout << "bench_serve: " << tenants << " tenants x " << instances
              << " instances, jobs " << jobs << ", wall " << wall_ms
              << " ms, rounds " << report.rounds << ", shed "
              << report.shed_tenants << " -> " << out_path << "\n";
    for (std::size_t cls = 0; cls < serve::kSlaClassCount; ++cls) {
      const auto sla = static_cast<serve::SlaClass>(cls);
      const serve::LatencyStats latency = server.Latency(sla);
      std::cout << "  " << serve::SlaName(sla) << " p50 "
                << latency.p50_ms << " ms  p99 " << latency.p99_ms
                << " ms  misses "
                << report.sla[cls].deadline_misses << "/"
                << report.sla[cls].instances << "\n";
    }
    return 0;
  } catch (const actg::Error& e) {
    std::cerr << "bench_serve: " << e.what() << "\n";
    return 1;
  }
}
