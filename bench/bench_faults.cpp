/// \file bench_faults.cpp
/// Fault-injection sweep: injection intensity vs deadline-miss rate and
/// energy for the MPEG decoder, the cruise controller and two random
/// CTGs, with the graceful-degradation ladder on and off. Also the
/// harness's own correctness gates:
///   - at zero injection intensity the adaptive run must reproduce the
///     fault-free run bit for bit (energy, misses, reschedule counts);
///   - with the ladder enabled the total misses over the sweep must not
///     exceed the no-degrade ablation's.
/// Exits nonzero when either gate fails. The sweep series is written to
/// out/faults_sweep.csv.

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "adaptive/controller.h"
#include "apps/common.h"
#include "apps/cruise.h"
#include "apps/mpeg.h"
#include "ctg/activation.h"
#include "experiments.h"
#include "faults/injector.h"
#include "faults/plan.h"
#include "obs/setup.h"
#include "runtime/pool.h"
#include "sim/report.h"
#include "util/atomic_file.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

using namespace actg;

/// Injector seed shared by every run; per-instance substreams fork off
/// it, so runs differ only through the plan (intensity) they carry.
constexpr std::uint64_t kInjectorSeed = 9001;

/// The base scenario every intensity scales: occasional execution-time
/// overruns beyond the stretched WCETs, rare transient PE dropouts,
/// short link-bandwidth collapses and a slow branch-profile drift.
faults::FaultPlan BasePlan() {
  faults::FaultPlan plan;
  plan.overrun.probability = 0.08;
  plan.overrun.min_factor = 1.2;
  plan.overrun.max_factor = 1.8;
  plan.dropout.probability = 0.01;
  plan.dropout.duration = 3;
  plan.dropout.rerun_penalty = 2.0;
  plan.link.probability = 0.03;
  plan.link.bandwidth_factor = 0.5;
  plan.link.duration = 2;
  plan.drift.max_flip_probability = 0.2;
  plan.drift.ramp_instances = 500;
  return plan;
}

/// One workload the sweep drives. The graph/platform owners live in
/// main() for the whole run.
struct Suite {
  std::string name;
  const ctg::Ctg* graph = nullptr;
  const arch::Platform* platform = nullptr;
  std::unique_ptr<ctg::ActivationAnalysis> analysis;
  ctg::BranchProbabilities profile{0};
  trace::BranchTrace vectors;
};

/// Aggregates of one (suite, intensity, degrade) run.
struct SweepRow {
  sim::RunSummary summary;
  std::size_t reschedules = 0;
  std::size_t escalations = 0;
  std::size_t oob_reschedules = 0;
  std::size_t recoveries = 0;
};

adaptive::DegradeOptions LadderOn() {
  adaptive::DegradeOptions degrade;
  degrade.enabled = true;
  return degrade;
}

SweepRow RunOne(const Suite& suite, double intensity, bool degrade) {
  bench::ExperimentSpec spec(*suite.graph, *suite.analysis,
                             *suite.platform);
  spec.WithProfile(suite.profile)
      .WithWindow(20)
      .WithThreshold(0.1)
      .WithScheduleCache();
  if (degrade) spec.WithDegrade(LadderOn());
  bench::AdaptiveHarness harness = spec.BuildAdaptive();

  faults::FaultPlan plan = BasePlan();
  plan.intensity = intensity;
  const faults::Injector injector(plan, *suite.graph, *suite.platform,
                                  kInjectorSeed);

  SweepRow row;
  row.summary = harness.RunWithFaults(suite.vectors, injector);
  row.reschedules = harness.reschedule_count();
  row.escalations = harness.controller().escalation_count();
  row.oob_reschedules = harness.controller().oob_reschedule_count();
  row.recoveries = harness.controller().recovery_count();
  return row;
}

/// The fault-free control the zero-intensity gate compares against.
SweepRow RunControl(const Suite& suite) {
  bench::ExperimentSpec spec(*suite.graph, *suite.analysis,
                             *suite.platform);
  spec.WithProfile(suite.profile)
      .WithWindow(20)
      .WithThreshold(0.1)
      .WithScheduleCache();
  bench::AdaptiveHarness harness = spec.BuildAdaptive();
  SweepRow row;
  row.summary = harness.Run(suite.vectors);
  row.reschedules = harness.reschedule_count();
  return row;
}

bool BitIdentical(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  obs::ScopedTracing tracing(argc, argv);
  runtime::Pool pool(runtime::ParseJobs(argc, argv));

  constexpr std::size_t kInstances = 1000;

  // ------------------------------------------------------------- workloads
  const apps::MpegModel mpeg = apps::MakeMpegModel();
  const apps::CruiseModel cruise = apps::MakeCruiseModel();
  const std::vector<bench::TestCase> random_cases =
      bench::MakeTable45Cases();

  std::vector<Suite> suites;
  {
    Suite s;
    s.name = "mpeg";
    s.graph = &mpeg.graph;
    s.platform = &mpeg.platform;
    s.analysis = std::make_unique<ctg::ActivationAnalysis>(mpeg.graph);
    s.vectors = apps::GenerateMovieTrace(
        mpeg, apps::MpegMovieProfiles()[5] /* Shuttle: volatile */,
        kInstances);
    s.profile = s.vectors.ProfiledProbabilities(mpeg.graph);
    suites.push_back(std::move(s));
  }
  {
    Suite s;
    s.name = "cruise";
    s.graph = &cruise.graph;
    s.platform = &cruise.platform;
    s.analysis = std::make_unique<ctg::ActivationAnalysis>(cruise.graph);
    s.vectors = apps::GenerateRoadTrace(cruise, 1, kInstances, 42);
    s.profile = s.vectors.ProfiledProbabilities(cruise.graph);
    suites.push_back(std::move(s));
  }
  for (std::size_t c = 0; c < 2; ++c) {
    const bench::TestCase& test = random_cases[c];
    Suite s;
    s.name = "rand-" + test.label;
    s.graph = &test.rc.graph;
    s.platform = &test.rc.platform;
    s.analysis = std::make_unique<ctg::ActivationAnalysis>(test.rc.graph);
    s.vectors = bench::MakeFluctuatingVectors(test.rc.graph, kInstances,
                                              777 + c);
    s.profile = s.vectors.ProfiledProbabilities(test.rc.graph);
    suites.push_back(std::move(s));
  }

  // ------------------------------------------------------------- the sweep
  const std::vector<double> intensities = {0.0, 0.25, 0.5, 1.0};

  // Flat job list: suites x intensities x {degrade off, on}, plus one
  // fault-free control per suite. Every job is self-contained, so the
  // pool order never shows in the results.
  struct Job {
    std::size_t suite;
    double intensity = 0.0;
    bool degrade = false;
    bool control = false;
  };
  std::vector<Job> jobs;
  for (std::size_t s = 0; s < suites.size(); ++s) {
    jobs.push_back(Job{s, 0.0, false, true});
    for (const double intensity : intensities) {
      jobs.push_back(Job{s, intensity, false, false});
      jobs.push_back(Job{s, intensity, true, false});
    }
  }
  const std::vector<SweepRow> rows =
      runtime::ParallelMap(pool, jobs.size(), [&](std::size_t j) {
        const Job& job = jobs[j];
        return job.control ? RunControl(suites[job.suite])
                           : RunOne(suites[job.suite], job.intensity,
                                    job.degrade);
      });
  const auto row_of = [&](std::size_t suite, double intensity,
                          bool degrade, bool control) -> const SweepRow& {
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      if (jobs[j].suite == suite && jobs[j].control == control &&
          (control || (jobs[j].intensity == intensity &&
                       jobs[j].degrade == degrade))) {
        return rows[j];
      }
    }
    ACTG_CHECK(false, "sweep job not found");
  };

  // ------------------------------------------------------- report + gates
  util::PrintBanner(std::cout,
                    "Fault-injection sweep - miss rate and energy vs "
                    "injection intensity (1000 instances per run, "
                    "window 20, threshold 0.1)");

  const std::string csv_path = util::OutputPath("faults_sweep.csv");
  util::AtomicFile csv_file(csv_path);
  util::CsvWriter csv(csv_file.os());
  csv.WriteRow(std::vector<std::string>{
      "suite", "intensity", "degrade", "instances", "energy_mj", "misses",
      "miss_rate", "overrun_instances", "failed_pe_hits", "escalations",
      "oob_reschedules", "recoveries"});

  bool gates_ok = true;
  std::size_t misses_with_ladder = 0;
  std::size_t misses_without_ladder = 0;

  for (std::size_t s = 0; s < suites.size(); ++s) {
    util::TablePrinter table({"intensity", "ladder", "energy mJ",
                              "misses", "overruns", "PE hits",
                              "escalations", "oob", "recoveries"});
    for (const double intensity : intensities) {
      for (const bool degrade : {false, true}) {
        const SweepRow& row = row_of(s, intensity, degrade, false);
        table.BeginRow()
            .Cell(intensity, 2)
            .Cell(degrade ? "on" : "off")
            .Cell(row.summary.total_energy_mj, 1)
            .Cell(row.summary.deadline_misses)
            .Cell(row.summary.overrun_instances)
            .Cell(row.summary.failed_pe_hits)
            .Cell(row.escalations)
            .Cell(row.oob_reschedules)
            .Cell(row.recoveries);
        if (intensity > 0.0) {
          (degrade ? misses_with_ladder : misses_without_ladder) +=
              row.summary.deadline_misses;
        }
        csv.WriteRow(std::vector<std::string>{
            suites[s].name, util::TablePrinter::Format(intensity, 2),
            degrade ? "on" : "off", std::to_string(kInstances),
            util::TablePrinter::Format(row.summary.total_energy_mj, 3),
            std::to_string(row.summary.deadline_misses),
            util::TablePrinter::Format(row.summary.MissRate(), 4),
            std::to_string(row.summary.overrun_instances),
            std::to_string(row.summary.failed_pe_hits),
            std::to_string(row.escalations),
            std::to_string(row.oob_reschedules),
            std::to_string(row.recoveries)});
      }
    }
    util::PrintBanner(std::cout, "suite " + suites[s].name);
    table.Print(std::cout);

    // Gate 1: zero injection must be byte-identical to the fault-free
    // control - same energy bits, same misses, same reschedule count.
    const SweepRow& control = row_of(s, 0.0, false, true);
    const SweepRow& zero = row_of(s, 0.0, false, false);
    if (!BitIdentical(control.summary.total_energy_mj,
                      zero.summary.total_energy_mj) ||
        control.summary.deadline_misses != zero.summary.deadline_misses ||
        control.reschedules != zero.reschedules) {
      std::cout << "GATE FAIL (" << suites[s].name
                << "): zero-intensity run diverges from the fault-free "
                   "control\n";
      gates_ok = false;
    }
  }

  std::cout << "\nTotal misses under injection: ladder off "
            << misses_without_ladder << ", ladder on "
            << misses_with_ladder << "\n";
  // Gate 2: the ladder must not be worse than the no-degrade ablation.
  if (misses_with_ladder > misses_without_ladder) {
    std::cout << "GATE FAIL: degradation ladder increased total misses\n";
    gates_ok = false;
  }
  std::cout << (gates_ok ? "gates: OK" : "gates: FAIL") << "\n";
  csv_file.Commit().ThrowIfError();
  std::cout << "sweep series written to " << csv_path << "\n";

  sim::WriteMetricsReport(std::cerr, runtime::Metrics::Global());
  return gates_ok ? 0 : 1;
}
