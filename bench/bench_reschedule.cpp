/// \file bench_reschedule.cpp
/// Reschedule-latency benchmark of the adaptive::Rescheduler tiers.
///
/// Drives one Rescheduler per mode (full / incremental / table) over
/// the same oscillating-probability trace — a sinusoid on the fork with
/// the smallest dirty region, so consecutive operating points are
/// distinct (the exact tier never hits) but differ at exactly one fork
/// (the warm-start path pins most of the graph) — and emits
/// BENCH_reschedule.json: per-mode latency percentiles, tier counts and
/// cache counters. The tier counts and cache counters are fully
/// deterministic and double as a regression check against the committed
/// baseline (bench/baselines/BENCH_reschedule.json); CI additionally
/// gates the warm-start win (full compute-p50 over incremental
/// compute-p50 must stay >= 2x).
///
///   bench_reschedule [--steps N] [--seed S] [--tasks T] [--pes P]
///                    [--forks F] [--out <file>]
///                    (default BENCH_reschedule.json)

#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "cli_common.h"
#include "adaptive/rescheduler.h"
#include "apps/common.h"
#include "ctg/activation.h"
#include "dvfs/schedule_table.h"
#include "runtime/metrics.h"
#include "runtime/schedule_cache.h"
#include "sched/incremental.h"
#include "tgff/random_ctg.h"
#include "util/atomic_file.h"
#include "util/error.h"

namespace {

using namespace actg;

/// \p base with \p fork's distribution replaced by {p, rest uniform}.
ctg::BranchProbabilities WithForkAt(const ctg::Ctg& graph,
                                    const ctg::BranchProbabilities& base,
                                    TaskId fork, double p) {
  ctg::BranchProbabilities probs = base;
  const auto outcomes =
      static_cast<std::size_t>(graph.OutcomeCount(fork));
  std::vector<double> dist(outcomes, (1.0 - p) / (outcomes - 1));
  dist[0] = p;
  probs.Set(fork, std::move(dist));
  return probs;
}

/// The fork whose probability change dirties the fewest tasks — the
/// oscillation axis that shows the warm-start payoff best.
TaskId PickOscillatingFork(const ctg::Ctg& graph,
                           const ctg::ActivationAnalysis& analysis,
                           const ctg::BranchProbabilities& base) {
  TaskId best = graph.ForkIds().front();
  std::size_t best_dirty = graph.task_count() + 1;
  for (TaskId fork : graph.ForkIds()) {
    const sched::IncrementalDelta delta = sched::ComputeDirtyRegion(
        graph, analysis, base, WithForkAt(graph, base, fork, 0.9));
    if (delta.dirty_count < best_dirty) {
      best_dirty = delta.dirty_count;
      best = fork;
    }
  }
  return best;
}

struct ModeResult {
  adaptive::RescheduleMode mode;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double compute_p50_us = 0.0;
  double compute_p99_us = 0.0;
  double dls_ms = 0.0;      ///< accumulated stage.dls (wall-clock)
  double stretch_ms = 0.0;  ///< accumulated stage.stretch (wall-clock)
  adaptive::TierCounts tiers;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t near_hits = 0;
  std::uint64_t near_misses = 0;
};

ModeResult RunMode(const ctg::Ctg& graph,
                   const ctg::ActivationAnalysis& analysis,
                   const arch::Platform& platform,
                   const ctg::BranchProbabilities& base, TaskId fork,
                   adaptive::RescheduleMode mode,
                   const dvfs::ScheduleTable* table, std::size_t steps) {
  runtime::Metrics metrics;
  runtime::ScheduleCache cache(runtime::ScheduleCacheOptions{}, &metrics);
  // stage.dls / stage.stretch accumulate into the global registry;
  // reset it so each mode's breakdown is isolated.
  runtime::Metrics::Global().Reset();

  adaptive::ReschedulerConfig config;
  config.cache = runtime::CacheBinding{&cache, 0};
  config.reschedule.mode = mode;
  config.reschedule.table = table;
  config.metrics = &metrics;
  adaptive::Rescheduler rescheduler(graph, analysis, platform, config);

  const adaptive::RescheduleRequest request{config.dls.available_pes, 0.0,
                                            "bench"};
  for (std::size_t i = 0; i < steps; ++i) {
    const double p =
        0.5 + 0.4 * std::sin(0.7 * static_cast<double>(i));
    rescheduler.Reschedule(WithForkAt(graph, base, fork, p), request);
  }

  ModeResult result;
  result.mode = mode;
  result.p50_us = metrics.quantile("reschedule.latency_us", 0.5);
  result.p99_us = metrics.quantile("reschedule.latency_us", 0.99);
  result.compute_p50_us =
      metrics.quantile("reschedule.compute_latency_us", 0.5);
  result.compute_p99_us =
      metrics.quantile("reschedule.compute_latency_us", 0.99);
  result.dls_ms = runtime::Metrics::Global().timer_ms("stage.dls");
  result.stretch_ms = runtime::Metrics::Global().timer_ms("stage.stretch");
  result.tiers = rescheduler.tier_counts();
  result.cache_hits = cache.hits();
  result.cache_misses = cache.misses();
  result.near_hits = cache.near_hits();
  result.near_misses = cache.near_misses();
  return result;
}

void WriteMode(std::ostream& os, const ModeResult& r) {
  os << "    {\"mode\": \"" << adaptive::RescheduleModeName(r.mode)
     << "\", "
     << "\"p50_us\": " << r.p50_us << ", "
     << "\"p99_us\": " << r.p99_us << ", "
     << "\"compute_p50_us\": " << r.compute_p50_us << ", "
     << "\"compute_p99_us\": " << r.compute_p99_us << ",\n"
     << "     \"tiers\": {\"exact\": " << r.tiers.exact
     << ", \"warm_cache\": " << r.tiers.warm_cache
     << ", \"warm_prior\": " << r.tiers.warm_prior
     << ", \"table\": " << r.tiers.table << ", \"full\": " << r.tiers.full
     << ", \"fallbacks\": " << r.tiers.incremental_fallbacks << "},\n"
     << "     \"cache\": {\"hits\": " << r.cache_hits
     << ", \"misses\": " << r.cache_misses
     << ", \"near_hits\": " << r.near_hits
     << ", \"near_misses\": " << r.near_misses << "}}";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::size_t steps = cli::CountFlag(argc, argv, "--steps", 256);
    const std::size_t seed = cli::CountFlag(argc, argv, "--seed", 42);
    const std::string out_path =
        cli::StringFlag(argc, argv, "--out", "BENCH_reschedule.json");

    // One mid-size fork-join graph: large enough that DLS dominates the
    // reschedule cost, few enough forks that the table stays small.
    tgff::RandomCtgParams params;
    params.task_count = static_cast<int>(cli::CountFlag(argc, argv, "--tasks", 48));
    params.pe_count = static_cast<int>(cli::CountFlag(argc, argv, "--pes", 4));
    params.fork_count = static_cast<int>(cli::CountFlag(argc, argv, "--forks", 4));
    params.category = tgff::Category::kForkJoin;
    params.seed = static_cast<std::uint64_t>(seed);
    tgff::RandomCase rc = tgff::MakeRandomCtg(params).value();
    apps::AssignDeadline(rc.graph, rc.platform, 1.3);
    const ctg::ActivationAnalysis analysis(rc.graph);
    const ctg::BranchProbabilities base =
        apps::UniformProbabilities(rc.graph);
    const TaskId fork = PickOscillatingFork(rc.graph, analysis, base);

    dvfs::ScheduleTableOptions table_options;
    table_options.points_per_fork = 3;
    table_options.max_entries = 8192;
    const dvfs::ScheduleTable table(rc.graph, analysis, rc.platform,
                                    table_options);

    std::vector<ModeResult> results;
    for (const adaptive::RescheduleMode mode :
         {adaptive::RescheduleMode::kFull,
          adaptive::RescheduleMode::kIncremental,
          adaptive::RescheduleMode::kTable}) {
      results.push_back(RunMode(rc.graph, analysis, rc.platform, base,
                                fork, mode, &table, steps));
    }

    util::AtomicFile json(out_path);
    ACTG_CHECK(json.ok(), "bench_reschedule: cannot write " + out_path);
    std::ostream& os = json.os();
    os << "{\n";
    os << "  \"benchmark\": \"reschedule\",\n";
    os << "  \"tasks\": " << rc.graph.task_count() << ",\n";
    os << "  \"pes\": " << rc.platform.pe_count() << ",\n";
    os << "  \"forks\": " << rc.graph.ForkIds().size() << ",\n";
    os << "  \"seed\": " << seed << ",\n";
    os << "  \"steps\": " << steps << ",\n";
    os << "  \"oscillating_fork\": " << fork.index() << ",\n";
    os << "  \"table_entries\": " << table.size() << ",\n";
    os << "  \"modes\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      WriteMode(os, results[i]);
      os << (i + 1 < results.size() ? ",\n" : "\n");
    }
    os << "  ]\n";
    os << "}\n";
    json.Commit().ThrowIfError();

    // Human summary (wall-clock, intentionally not diffable).
    std::cout << "bench_reschedule: " << rc.graph.task_count()
              << " tasks, " << steps << " steps, oscillating fork "
              << fork.index() << " -> " << out_path << "\n";
    for (const ModeResult& r : results) {
      std::cout << "  " << adaptive::RescheduleModeName(r.mode)
                << ": p50 " << r.p50_us << " us  p99 " << r.p99_us
                << " us  compute p50 " << r.compute_p50_us
                << " us  tiers e/wc/wp/t/f " << r.tiers.exact << "/"
                << r.tiers.warm_cache << "/" << r.tiers.warm_prior << "/"
                << r.tiers.table << "/" << r.tiers.full << " (fallbacks "
                << r.tiers.incremental_fallbacks << ")  dls "
                << r.dls_ms << " ms  stretch " << r.stretch_ms << " ms\n";
    }
    const double full_p50 = results[0].compute_p50_us;
    const double inc_p50 = results[1].compute_p50_us;
    if (inc_p50 > 0.0) {
      std::cout << "  warm-start speedup (full/incremental compute p50): "
                << full_p50 / inc_p50 << "x\n";
    }
    return 0;
  } catch (const actg::Error& e) {
    std::cerr << "bench_reschedule: " << e.what() << "\n";
    return 1;
  }
}
