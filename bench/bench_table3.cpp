/// \file bench_table3.cpp
/// Reproduces paper Table 3: energy consumption of the vehicle
/// cruise-controller CTG (32 tasks, 2 branch forks, 5 PEs, deadline =
/// 2x the optimum schedule length) under the non-adaptive and the
/// adaptive algorithm for three road-scenario vector sequences. The
/// paper uses threshold 0.1 for sequences 1 and 2 and 0.5 for sequence
/// 3; we report both thresholds for every sequence, flagging the
/// paper's selection.

#include <iostream>

#include "apps/cruise.h"
#include "ctg/activation.h"
#include "experiments.h"
#include "obs/setup.h"
#include "runtime/pool.h"
#include "sim/executor.h"
#include "sim/report.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace actg;

  obs::ScopedTracing tracing(argc, argv);
  runtime::Pool pool(runtime::ParseJobs(argc, argv));

  const apps::CruiseModel model = apps::MakeCruiseModel();
  const ctg::ActivationAnalysis analysis(model.graph);

  util::PrintBanner(std::cout,
                    "Table 3 - Energy consumption of vehicle cruise "
                    "controller system (total energy over 1000 "
                    "instances, mJ)");

  // The first sequence doubles as the training sequence that provides
  // the non-adaptive profile (paper Section IV).
  const trace::BranchTrace training =
      apps::GenerateRoadTrace(model, 1, 1000, /*seed=*/11);
  const ctg::BranchProbabilities profile =
      training.ProfiledProbabilities(model.graph);

  util::TablePrinter table({"Vector sequence", "Non-adaptive",
                            "Adaptive", "threshold", "calls",
                            "saving"});

  // The cyclic road scenarios revisit the same windowed probability
  // estimates over and over, so each sequence's schedule cache should
  // show a substantial hit rate (see the metrics dump on stderr).
  struct Row {
    double online_energy = 0.0;
    double adaptive_energy = 0.0;
    double threshold = 0.0;
    std::size_t calls = 0;
  };
  const std::vector<Row> rows = runtime::ParallelMap(
      pool, 3, [&](std::size_t i) {
        const int sequence = static_cast<int>(i) + 1;
        const trace::BranchTrace vectors =
            apps::GenerateRoadTrace(model, sequence, 1000,
                                    /*seed=*/100 + sequence);
        bench::ExperimentSpec spec(model.graph, analysis, model.platform);
        spec.WithProfile(profile).WithWindow(20).WithScheduleCache();
        const sched::Schedule online = spec.BuildOnlineSchedule();

        Row row;
        row.online_energy =
            sim::RunTrace(online, vectors).total_energy_mj;

        // Paper: threshold 0.1 for the first two sequences, 0.5 for the
        // third.
        row.threshold = sequence == 3 ? 0.5 : 0.1;
        bench::AdaptiveHarness harness =
            spec.WithThreshold(row.threshold).BuildAdaptive();
        const sim::RunSummary adaptive_run = harness.Run(vectors);
        row.adaptive_energy = adaptive_run.total_energy_mj;
        row.calls = harness.reschedule_count();
        return row;
      });

  int sequence = 0;
  for (const Row& row : rows) {
    ++sequence;
    table.BeginRow()
        .Cell(sequence)
        .Cell(row.online_energy, 0)
        .Cell(row.adaptive_energy, 0)
        .Cell(row.threshold, 1)
        .Cell(row.calls)
        .Cell(util::TablePrinter::Format(
                  100.0 * (1.0 - row.adaptive_energy /
                                     row.online_energy),
                  1) +
              "%");
  }
  table.Print(std::cout);

  std::cout
      << "\nPaper reference: non-adaptive 155/206/147 vs adaptive "
         "148/196/139 (savings ~5% in all three cases, limited because "
         "the CTG has only three minterms, two of which are almost "
         "equal in energy, and the deadline is double the optimum "
         "schedule length); ~150 calls at T=0.1 and ~9 at T=0.5.\n";

  sim::WriteMetricsReport(std::cerr, runtime::Metrics::Global());
  return 0;
}
