/// \file bench_micro.cpp
/// google-benchmark micro-benchmarks of the framework's hot paths. The
/// headline comparison backs the paper's runtime claim: the online
/// stretching heuristic is orders of magnitude faster than NLP-based
/// stretching (paper: 0.6 ms vs 70 s per CTG), which is what makes it
/// usable for runtime adaptation.

#include <cstdlib>
#include <fstream>
#include <iostream>

#include <benchmark/benchmark.h>

#include "apps/common.h"
#include "apps/mpeg.h"
#include "ctg/activation.h"
#include "dvfs/path_engine.h"
#include "dvfs/paths.h"
#include "dvfs/policy.h"
#include "experiments.h"
#include "obs/setup.h"
#include "profiling/window.h"
#include "runtime/metrics.h"
#include "sched/dls.h"
#include "sim/energy.h"
#include "sim/executor.h"
#include "sim/report.h"
#include "tgff/random_ctg.h"
#include "util/atomic_file.h"
#include "util/error.h"

namespace {

using namespace actg;

struct Workbench {
  tgff::RandomCase rc;
  ctg::ActivationAnalysis analysis;
  ctg::BranchProbabilities probs;

  explicit Workbench(int tasks = 25, int forks = 3, int pes = 3)
      : rc([&] {
          tgff::RandomCtgParams params;
          params.task_count = tasks;
          params.fork_count = forks;
          params.pe_count = pes;
          params.seed = 4242;
          auto generated = tgff::MakeRandomCtg(params).value();
          apps::AssignDeadline(generated.graph, generated.platform, 1.3);
          return generated;
        }()),
        analysis(rc.graph),
        probs(apps::UniformProbabilities(rc.graph)) {}
};

void BM_ActivationAnalysis(benchmark::State& state) {
  Workbench wb(static_cast<int>(state.range(0)), 3, 3);
  for (auto _ : state) {
    ctg::ActivationAnalysis analysis(wb.rc.graph);
    benchmark::DoNotOptimize(analysis.Gamma(TaskId{0}));
  }
}
BENCHMARK(BM_ActivationAnalysis)->Arg(15)->Arg(25);

void BM_ModifiedDls(benchmark::State& state) {
  Workbench wb(static_cast<int>(state.range(0)), 3, 3);
  for (auto _ : state) {
    const sched::Schedule s = sched::RunDls(wb.rc.graph, wb.analysis,
                                            wb.rc.platform, wb.probs);
    benchmark::DoNotOptimize(s.Makespan());
  }
}
BENCHMARK(BM_ModifiedDls)->Arg(15)->Arg(25);

void BM_PathEnumeration(benchmark::State& state) {
  Workbench wb;
  const sched::Schedule s =
      sched::RunDls(wb.rc.graph, wb.analysis, wb.rc.platform, wb.probs);
  for (auto _ : state) {
    const dvfs::PathSet paths(s);
    benchmark::DoNotOptimize(paths.size());
  }
}
BENCHMARK(BM_PathEnumeration);

void BM_StretchOnline(benchmark::State& state) {
  // The paper's headline: ~0.6 ms per CTG for ordering + stretching.
  Workbench wb;
  for (auto _ : state) {
    sched::Schedule s = sched::RunDls(wb.rc.graph, wb.analysis,
                                      wb.rc.platform, wb.probs);
    const auto stats = dvfs::ApplyPolicy("online", s, wb.probs);
    benchmark::DoNotOptimize(stats.total_extension_ms);
  }
}
BENCHMARK(BM_StretchOnline);

void BM_StretchNlp(benchmark::State& state) {
  Workbench wb;
  for (auto _ : state) {
    sched::Schedule s = sched::RunDls(wb.rc.graph, wb.analysis,
                                      wb.rc.platform, wb.probs);
    const auto stats = dvfs::ApplyPolicy("nlp", s, wb.probs);
    benchmark::DoNotOptimize(stats.total_extension_ms);
  }
}
BENCHMARK(BM_StretchNlp)->Unit(benchmark::kMillisecond);

void BM_ExpectedEnergy(benchmark::State& state) {
  Workbench wb;
  sched::Schedule s =
      sched::RunDls(wb.rc.graph, wb.analysis, wb.rc.platform, wb.probs);
  dvfs::ApplyPolicy("online", s, wb.probs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::ExpectedEnergy(s, wb.probs));
  }
}
BENCHMARK(BM_ExpectedEnergy);

void BM_ExecuteInstance(benchmark::State& state) {
  Workbench wb;
  sched::Schedule s =
      sched::RunDls(wb.rc.graph, wb.analysis, wb.rc.platform, wb.probs);
  dvfs::ApplyPolicy("online", s, wb.probs);
  ctg::BranchAssignment assignment(wb.rc.graph.task_count());
  for (TaskId fork : wb.rc.graph.ForkIds()) assignment.Set(fork, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::ExecuteInstance(s, assignment).energy_mj);
  }
}
BENCHMARK(BM_ExecuteInstance);

void BM_AdaptiveStepNoTrigger(benchmark::State& state) {
  // Cost of one instance through the controller when no threshold
  // crossing occurs (the common case).
  Workbench wb;
  bench::AdaptiveHarness harness =
      bench::ExperimentSpec(wb.rc.graph, wb.analysis, wb.rc.platform)
          .WithProfile(wb.probs)
          .WithWindow(20)
          .WithThreshold(0.99)
          .BuildAdaptive();
  ctg::BranchAssignment assignment(wb.rc.graph.task_count());
  for (TaskId fork : wb.rc.graph.ForkIds()) assignment.Set(fork, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        harness.controller().ProcessInstance(assignment).energy_mj);
  }
}
BENCHMARK(BM_AdaptiveStepNoTrigger);

void BM_RescheduleEngine(benchmark::State& state) {
  // One full adaptive reschedule — DLS + path enumeration + online
  // stretching — through a persistent PathEngine, exactly as the
  // controller runs it: bitset guard algebra, preallocated path/guard
  // pools and DLS scratch reused across iterations.
  const auto cases = bench::MakeTable1Cases();
  const bench::TestCase& test =
      cases[static_cast<std::size_t>(state.range(0))];
  const ctg::ActivationAnalysis analysis(test.rc.graph);
  const auto probs = apps::UniformProbabilities(test.rc.graph);
  dvfs::PathEngine engine(test.rc.graph, analysis, test.rc.platform);
  for (auto _ : state) {
    sched::Schedule s =
        sched::RunDls(test.rc.graph, analysis, test.rc.platform, probs,
                      {}, &engine.dls_workspace());
    const auto stats =
        dvfs::ApplyPolicy("online", s, probs, {}, &engine);
    benchmark::DoNotOptimize(stats.total_extension_ms);
  }
}
BENCHMARK(BM_RescheduleEngine)->Arg(0)->Arg(4);

void BM_RescheduleDnf(benchmark::State& state) {
  // Baseline for BM_RescheduleEngine: the pre-engine behavior — a
  // fresh allocation-heavy DNF enumeration per reschedule
  // (PathEngineOptions::force_dnf) and no reused DLS scratch.
  const auto cases = bench::MakeTable1Cases();
  const bench::TestCase& test =
      cases[static_cast<std::size_t>(state.range(0))];
  const ctg::ActivationAnalysis analysis(test.rc.graph);
  const auto probs = apps::UniformProbabilities(test.rc.graph);
  for (auto _ : state) {
    sched::Schedule s =
        sched::RunDls(test.rc.graph, analysis, test.rc.platform, probs);
    dvfs::PathEngine engine(test.rc.graph, analysis, test.rc.platform,
                            dvfs::PathEngineOptions{.force_dnf = true});
    const auto stats =
        dvfs::ApplyPolicy("online", s, probs, {}, &engine);
    benchmark::DoNotOptimize(stats.total_extension_ms);
  }
}
BENCHMARK(BM_RescheduleDnf)->Arg(0)->Arg(4);

void BM_MpegFullPipeline(benchmark::State& state) {
  // The graph the paper says the NLP reference could not handle at all.
  const apps::MpegModel model = apps::MakeMpegModel();
  const ctg::ActivationAnalysis analysis(model.graph);
  const auto probs = apps::UniformProbabilities(model.graph);
  for (auto _ : state) {
    sched::Schedule s =
        sched::RunDls(model.graph, analysis, model.platform, probs);
    dvfs::ApplyPolicy("online", s, probs);
    benchmark::DoNotOptimize(s.Makespan());
  }
}
BENCHMARK(BM_MpegFullPipeline)->Unit(benchmark::kMillisecond);

void BM_GuardProbability(benchmark::State& state) {
  const apps::MpegModel model = apps::MakeMpegModel();
  const ctg::ActivationAnalysis analysis(model.graph);
  const auto probs = apps::UniformProbabilities(model.graph);
  // Deepest guard: a block blend task.
  TaskId deep;
  std::size_t best = 0;
  for (TaskId t : model.graph.TaskIds()) {
    const auto support = analysis.ActivationGuard(t).Support();
    if (support.size() >= best) {
      best = support.size();
      deep = t;
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis.ActivationGuard(deep).Probability(probs));
  }
}
BENCHMARK(BM_GuardProbability);

void BM_SlidingWindowObserve(benchmark::State& state) {
  const apps::MpegModel model = apps::MakeMpegModel();
  profiling::SlidingWindowProfiler profiler(model.graph, 20);
  int i = 0;
  for (auto _ : state) {
    profiler.Observe(model.fork_skipped, i++ & 1);
    benchmark::DoNotOptimize(
        profiler.WindowedProbability(model.fork_skipped, 0));
  }
}
BENCHMARK(BM_SlidingWindowObserve);

}  // namespace

// BENCHMARK_MAIN, plus an optional metrics dump: when ACTG_METRICS_CSV
// names a file, the accumulated runtime counters and stage timers of the
// whole run (guard.dnf_fallbacks, cache hits, stage.* wall clocks) are
// written there as CSV. CI uploads it as the perf artifact.
int main(int argc, char** argv) {
  // --trace is ours, not google-benchmark's: strip it (and install the
  // session) before Initialize sees argv.
  actg::obs::ScopedTracing tracing(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (const char* path = std::getenv("ACTG_METRICS_CSV")) {
    actg::util::AtomicFile out(path);
    actg::sim::WriteMetricsCsv(out.os(), actg::runtime::Metrics::Global());
    const actg::util::Error err = out.Commit();
    if (!err.ok()) {
      std::cerr << "bench_micro: " << err.message() << "\n";
      return 1;
    }
  }
  return 0;
}
