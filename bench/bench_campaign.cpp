/// \file bench_campaign.cpp
/// Fleet-scale throughput benchmark of the Monte-Carlo campaign runner.
///
/// Runs the deterministic synthetic campaign
/// (campaign::SyntheticCampaign) at the requested --jobs concurrency
/// and emits BENCH_campaign.json: wall time, app-instances-per-second
/// throughput, the deterministic fleet counters and the
/// reschedule-latency percentiles. CI gates the throughput against the
/// committed baseline (bench/baselines/BENCH_campaign.json) with
/// generous noise headroom; the deterministic fields double as a cheap
/// population regression check, and max RSS (when the platform reports
/// it) documents the O(shards x cells x bins) memory contract.
///
///   bench_campaign [--jobs N] [--instances I] [--shards S] [--seed X]
///                  [--out <file>]      (default BENCH_campaign.json)

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>

#include <sys/resource.h>

#include "campaign/runner.h"
#include "campaign/spec.h"
#include "cli_common.h"
#include "runtime/pool.h"
#include "util/atomic_file.h"
#include "util/error.h"

namespace {

using namespace actg;

/// Peak resident set in KiB, or 0 where getrusage is unavailable.
long MaxRssKb() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return usage.ru_maxrss;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::size_t jobs = runtime::ParseJobs(argc, argv);
    const std::size_t instances =
        cli::CountFlag(argc, argv, "--instances", 20000);
    const std::size_t shards = cli::CountFlag(argc, argv, "--shards", 32);
    const std::uint64_t seed = cli::SeedFlag(argc, argv, 7);
    const std::string out_path =
        cli::StringFlag(argc, argv, "--out", "BENCH_campaign.json");

    campaign::CampaignSpec spec =
        campaign::SyntheticCampaign(instances, seed);
    spec.shards = shards;

    campaign::CampaignOptions options;
    options.jobs = jobs;
    campaign::Campaign run(std::move(spec), options);

    const auto begin = std::chrono::steady_clock::now();
    const campaign::CampaignResult& result = run.Run();
    const auto end = std::chrono::steady_clock::now();
    const double wall_ms =
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
            .count() *
        1e-6;
    const double instances_per_sec =
        wall_ms > 0.0 ? static_cast<double>(instances) / (wall_ms * 1e-3)
                      : 0.0;

    std::size_t oracle_validations = 0;
    for (const campaign::ShardExecution& shard : result.shards) {
      oracle_validations += shard.oracle_validations;
    }
    const report::LatencyStats latency = run.RescheduleLatency();

    util::AtomicFile json(out_path);
    ACTG_CHECK(json.ok(), "bench_campaign: cannot write " + out_path);
    std::ostream& os = json.os();
    os << "{\n";
    os << "  \"benchmark\": \"campaign\",\n";
    os << "  \"instances\": " << instances << ",\n";
    os << "  \"shards\": " << result.spec.shards << ",\n";
    os << "  \"cells\": " << result.keys.size() << ",\n";
    os << "  \"seed\": " << seed << ",\n";
    os << "  \"jobs\": " << jobs << ",\n";
    os << "  \"wall_ms\": " << wall_ms << ",\n";
    os << "  \"instances_per_sec\": " << instances_per_sec << ",\n";
    os << "  \"max_rss_kb\": " << MaxRssKb() << ",\n";
    os << "  \"executions\": " << result.fleet.instances << ",\n";
    os << "  \"deadline_misses\": " << result.fleet.deadline_misses
       << ",\n";
    os << "  \"miss_rate\": " << result.fleet.MissRate() << ",\n";
    os << "  \"total_energy_mj\": " << result.fleet.total_energy_mj
       << ",\n";
    os << "  \"max_makespan_ms\": " << result.fleet.max_makespan_ms
       << ",\n";
    os << "  \"reschedules\": " << result.fleet.reschedules << ",\n";
    os << "  \"oracle_sampled\": " << result.oracle_sampled << ",\n";
    os << "  \"oracle_validations\": " << oracle_validations << ",\n";
    os << "  \"tiers\": {\"exact\": " << result.tiers.exact
       << ", \"warm_cache\": " << result.tiers.warm_cache
       << ", \"warm_prior\": " << result.tiers.warm_prior
       << ", \"table\": " << result.tiers.table
       << ", \"full\": " << result.tiers.full
       << ", \"fallbacks\": " << result.tiers.incremental_fallbacks
       << "},\n";
    os << "  \"reschedule_latency\": {\"samples\": " << latency.samples
       << ", \"p50_ms\": " << latency.p50_ms
       << ", \"p99_ms\": " << latency.p99_ms
       << ", \"max_ms\": " << latency.max_ms << "}\n";
    os << "}\n";
    json.Commit().ThrowIfError();

    // Human summary (wall-clock, intentionally not diffable).
    std::cout << "bench_campaign: " << instances << " instances x "
              << result.keys.size() << " cells, shards "
              << result.spec.shards << ", jobs " << jobs << ", wall "
              << wall_ms << " ms (" << instances_per_sec
              << " instances/s), rss " << MaxRssKb() << " KiB -> "
              << out_path << "\n";
    std::cout << "  miss_rate " << result.fleet.MissRate() << "  energy "
              << result.fleet.total_energy_mj << " mJ  reschedules "
              << result.fleet.reschedules << "  oracle "
              << oracle_validations << " (" << result.oracle_sampled
              << " sampled)\n";
    return 0;
  } catch (const actg::Error& e) {
    std::cerr << "bench_campaign: " << e.what() << "\n";
    return 1;
  }
}
