#include "experiments.h"

#include <limits>
#include <memory>

#include "apps/common.h"
#include "dvfs/policy.h"
#include "sched/dls.h"
#include "sim/energy.h"
#include "sim/executor.h"
#include "trace/generators.h"
#include "util/error.h"
#include "util/rng.h"

namespace actg::bench {

namespace {

/// Deadline tightness used for every random-CTG experiment (calibrated
/// so that the Table 1 normalized energies land in the paper's bands;
/// the paper itself does not state its deadlines).
constexpr double kDeadlineFactor = 1.3;

TestCase MakeCase(int tasks, int pes, int forks, tgff::Category category,
                  std::uint64_t seed) {
  tgff::RandomCtgParams params;
  params.task_count = tasks;
  params.pe_count = pes;
  params.fork_count = forks;
  params.category = category;
  params.seed = seed;
  TestCase test{std::to_string(tasks) + "/" + std::to_string(pes) + "/" +
                    std::to_string(forks),
                tgff::MakeRandomCtg(params).value()};
  apps::AssignDeadline(test.rc.graph, test.rc.platform, kDeadlineFactor);
  return test;
}

}  // namespace

std::vector<TestCase> MakeTable1Cases() {
  std::vector<TestCase> cases;
  cases.push_back(MakeCase(25, 3, 3, tgff::Category::kForkJoin, 1000));
  cases.push_back(MakeCase(16, 3, 1, tgff::Category::kForkJoin, 1001));
  cases.push_back(MakeCase(15, 4, 2, tgff::Category::kForkJoin, 1002));
  cases.push_back(MakeCase(15, 4, 2, tgff::Category::kForkJoin, 1003));
  cases.push_back(MakeCase(25, 4, 3, tgff::Category::kForkJoin, 1004));
  return cases;
}

std::vector<TestCase> MakeTable45Cases() {
  std::vector<TestCase> cases;
  cases.push_back(MakeCase(25, 3, 3, tgff::Category::kForkJoin, 2000));
  cases.push_back(MakeCase(16, 3, 1, tgff::Category::kForkJoin, 2001));
  cases.push_back(MakeCase(15, 4, 2, tgff::Category::kForkJoin, 2002));
  cases.push_back(MakeCase(15, 4, 1, tgff::Category::kForkJoin, 2003));
  cases.push_back(MakeCase(25, 4, 3, tgff::Category::kForkJoin, 2004));
  cases.push_back(MakeCase(25, 3, 3, tgff::Category::kFlat, 2005));
  cases.push_back(MakeCase(16, 3, 1, tgff::Category::kFlat, 2006));
  cases.push_back(MakeCase(15, 4, 2, tgff::Category::kFlat, 2007));
  cases.push_back(MakeCase(15, 4, 1, tgff::Category::kFlat, 2008));
  cases.push_back(MakeCase(25, 4, 3, tgff::Category::kFlat, 2009));
  return cases;
}

trace::BranchTrace MakeFluctuatingVectors(const ctg::Ctg& graph,
                                          std::size_t instances,
                                          std::uint64_t seed) {
  trace::TraceGenerator gen(graph);
  int k = 0;
  for (TaskId fork : graph.ForkIds()) {
    trace::SinusoidProcess::Params params;
    params.outcomes = graph.OutcomeCount(fork);
    params.center = 0.5;
    // Paper: "the average probability fluctuation per branch was 0.4~0.5
    // during runtime" — swings reach ~0.05/0.95.
    params.amplitude = 0.45;
    params.period = 150.0 + 70.0 * k;
    params.phase = 0.7 * k;
    ++k;
    gen.SetProcess(fork,
                   std::make_unique<trace::SinusoidProcess>(params));
  }
  util::Random rng(seed);
  return gen.Generate(instances, rng);
}

ctg::BranchProbabilities BiasedProfile(
    const ctg::Ctg& graph, const ctg::ActivationAnalysis& analysis,
    const arch::Platform& platform, bool lowest, double bias) {
  const auto uniform = apps::UniformProbabilities(graph);
  const sched::Schedule nominal =
      sched::RunDls(graph, analysis, platform, uniform);

  ctg::Minterm extreme;
  double extreme_energy =
      lowest ? std::numeric_limits<double>::infinity() : -1.0;
  for (const ctg::Minterm& scenario :
       analysis.EnumerateScenarioAssignments()) {
    const double energy = sim::ScenarioEnergy(nominal, scenario);
    if ((lowest && energy < extreme_energy) ||
        (!lowest && energy > extreme_energy)) {
      extreme_energy = energy;
      extreme = scenario;
    }
  }

  ctg::BranchProbabilities profile(graph.task_count());
  for (TaskId fork : graph.ForkIds()) {
    const int arity = graph.OutcomeCount(fork);
    const auto outcome = extreme.OutcomeOf(fork);
    std::vector<double> dist(
        static_cast<std::size_t>(arity),
        outcome.has_value() ? (1.0 - bias) / (arity - 1) : 1.0 / arity);
    if (outcome.has_value()) {
      dist[static_cast<std::size_t>(*outcome)] = bias;
    }
    profile.Set(fork, std::move(dist));
  }
  return profile;
}

sim::RunSummary AdaptiveHarness::Run(const trace::BranchTrace& vectors) {
  return adaptive::RunAdaptive(*controller_, vectors);
}

sim::RunSummary AdaptiveHarness::RunWithFaults(
    const trace::BranchTrace& vectors, const faults::Injector& injector) {
  return adaptive::RunAdaptiveWithFaults(*controller_, vectors, injector);
}

sched::Schedule ExperimentSpec::BuildOnlineSchedule() const {
  ACTG_CHECK(profile_ != nullptr, "ExperimentSpec: profile not set");
  sched::Schedule schedule =
      sched::RunDls(*graph_, *analysis_, *platform_, *profile_);
  dvfs::ApplyPolicy(policy_, schedule, *profile_);
  return schedule;
}

AdaptiveHarness ExperimentSpec::BuildAdaptive() const {
  ACTG_CHECK(profile_ != nullptr, "ExperimentSpec: profile not set");
  AdaptiveHarness harness;
  if (use_cache_) {
    harness.cache_ = std::make_unique<runtime::ScheduleCache>(
        runtime::ScheduleCacheOptions{}, metrics_);
  }
  adaptive::AdaptiveOptions options;
  options.window_length = window_length_;
  options.threshold = threshold_;
  options.policy = policy_;
  options.trace = trace_;
  options.cache = runtime::CacheBinding{harness.cache_.get(), 0};
  options.reschedule.mode = reschedule_mode_;
  if (reschedule_mode_ == adaptive::RescheduleMode::kTable) {
    dvfs::ScheduleTableOptions table_options;
    table_options.policy = policy_;
    harness.table_ = std::make_unique<dvfs::ScheduleTable>(
        *graph_, *analysis_, *platform_, table_options);
    options.reschedule.table = harness.table_.get();
  }
  options.degrade = degrade_;
  harness.controller_ = std::make_unique<adaptive::AdaptiveController>(
      *graph_, *analysis_, *platform_, *profile_, options);
  return harness;
}

AdaptiveComparison CompareAdaptive(const ExperimentSpec& spec,
                                   const trace::BranchTrace& vectors) {
  AdaptiveComparison result;

  // The online run and the two adaptive thresholds are independent;
  // job 0 = online, jobs 1/2 = adaptive with thresholds[job - 1].
  const double thresholds[2] = {0.5, 0.1};
  auto run_unit = [&](std::size_t job) {
    if (job == 0) {
      const sched::Schedule online = spec.BuildOnlineSchedule();
      result.online_energy = sim::RunTrace(online, vectors).total_energy_mj;
      return;
    }
    ExperimentSpec unit = spec;
    AdaptiveHarness harness =
        unit.WithThreshold(thresholds[job - 1]).BuildAdaptive();
    const sim::RunSummary summary = harness.Run(vectors);
    if (job == 1) {
      result.adaptive_energy_t05 = summary.total_energy_mj;
      result.calls_t05 = harness.reschedule_count();
    } else {
      result.adaptive_energy_t01 = summary.total_energy_mj;
      result.calls_t01 = harness.reschedule_count();
    }
  };
  if (spec.pool() != nullptr) {
    runtime::ParallelMap(*spec.pool(), 3, [&](std::size_t job) {
      run_unit(job);
      return 0;
    });
  } else {
    for (std::size_t job = 0; job < 3; ++job) run_unit(job);
  }
  return result;
}

}  // namespace actg::bench
